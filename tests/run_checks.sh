#!/usr/bin/env bash
# Build and run the full test suite under each verification preset:
# the default optimized build plus the ASan+UBSan build, so memory
# and UB bugs in the arena/kernel hot paths cannot slip through an
# optimized-only run.
#
# Usage: tests/run_checks.sh [preset...]
#   With no arguments, runs: relwithdebinfo asan-ubsan
#   Pass preset names (see CMakePresets.json) to run a subset, e.g.:
#     tests/run_checks.sh asan-ubsan
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(relwithdebinfo asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

# Build directory per configure preset (see CMakePresets.json).
bindir_for() {
    case "$1" in
        release) echo build-release ;;
        relwithdebinfo) echo build ;;
        asan-ubsan) echo build-asan ;;
        tsan) echo build-tsan ;;
        *) echo build ;;
    esac
}

for preset in "${presets[@]}"; do
    echo "==> preset: ${preset}"
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    ctest --preset "${preset}" -j "${jobs}"
    # Second pass with SIMD dispatch disabled: on AVX2 hosts the run
    # above only exercises the vector backend, so this pins the scalar
    # reference kernels (and the scalar/AVX2 bit-identity contracts
    # are still checked above, where both backends are reachable).
    # This also covers the int8 kernels: the dispatched run and this
    # scalar run both execute the *I8* suites, whose fixtures assert
    # the two backends agree bit for bit.
    echo "==> preset: ${preset} (MNNFAST_NO_SIMD=1)"
    MNNFAST_NO_SIMD=1 ctest --preset "${preset}" -j "${jobs}"
    bindir="$(bindir_for "${preset}")"
    # Autotuner smoke: the same deterministic inference must produce
    # bit-identical output whether kernel plans are measured by the
    # tuner, disabled (MNNFAST_NO_TUNER=1, default plans), or imported
    # from an exported table — and an imported table must satisfy
    # every plan lookup without re-measuring (tuner_measured 0).
    if [ -x "${bindir}/bench/tuner_smoke" ]; then
        echo "==> preset: ${preset} (autotuner smoke)"
        tdir=$(mktemp -d)
        "${bindir}/bench/tuner_smoke" --export "${tdir}/table.json" \
            > "${tdir}/tuned.txt"
        MNNFAST_NO_TUNER=1 "${bindir}/bench/tuner_smoke" \
            > "${tdir}/untuned.txt"
        MNNFAST_TUNER_CACHE="${tdir}/table.json" \
            "${bindir}/bench/tuner_smoke" > "${tdir}/imported.txt"
        diff <(grep '^score' "${tdir}/tuned.txt") \
             <(grep '^score' "${tdir}/untuned.txt")
        diff <(grep '^score' "${tdir}/tuned.txt") \
             <(grep '^score' "${tdir}/imported.txt")
        grep -q '^tuner_measured 0$' "${tdir}/imported.txt"
        rm -rf "${tdir}"
    fi
    # Routed-attention smoke: the top-k ablation's k=all leg asserts
    # bit-identity with the unrouted engine across every storage
    # precision, and its sharded leg asserts routed scatter/gather
    # composes bit-identically — the binary exits nonzero on any
    # violation.
    if [ -x "${bindir}/bench/ablation_topk" ]; then
        echo "==> preset: ${preset} (top-k routing smoke)"
        MNNFAST_BENCH_JSON="${bindir}/BENCH_topk_smoke.json" \
            "${bindir}/bench/ablation_topk" --smoke
    fi
    # Cluster-serving smoke: the loopback scenario grid's bit-identity
    # leg (cluster gather vs in-process ShardedEngine, every
    # precision), its failover leg (no accepted request lost across
    # injected disconnects), and the pipelined leg (a W=4 window with
    # send-ahead must beat the serial front end on the clean and
    # jittery networks, every batch complete) all exit nonzero on
    # violation.
    if [ -x "${bindir}/bench/serving_cluster" ]; then
        echo "==> preset: ${preset} (cluster serving smoke)"
        MNNFAST_BENCH_JSON="${bindir}/BENCH_cluster_smoke.json" \
            "${bindir}/bench/serving_cluster" --smoke
    fi
    # Cross-process cluster smoke: forks real ShardNode processes
    # serving over TCP on 127.0.0.1 and requires the gathered batch to
    # be bit-identical to the in-process ShardedEngine — both a raw
    # front-end gather per precision and the served leg (LiveServer
    # dispatching through a pipelined W=4 front end, per-question
    # bit-identity plus an exactly balanced admission ledger).
    if [ -x "${bindir}/bench/cluster_smoke" ]; then
        echo "==> preset: ${preset} (cross-process cluster smoke)"
        "${bindir}/bench/cluster_smoke"
    fi
    # Live-server smoke under the leak-checking build: a short
    # low-rate open-loop run whose shutdown must drain every accepted
    # request — ASan flags any promise/thread/arena leaked on the
    # serve or teardown paths.
    if [ "${preset}" = "asan-ubsan" ]; then
        echo "==> preset: ${preset} (live-server smoke)"
        MNNFAST_BENCH_JSON=build-asan/BENCH_serving_smoke.json \
            ./build-asan/bench/serving_live --smoke
        # Sharded-serving smoke: scatter/gather across the worker pool
        # plus the engine-level equivalence column, under the same
        # leak/UB checking.
        echo "==> preset: ${preset} (sharded-serving smoke)"
        MNNFAST_BENCH_JSON=build-asan/BENCH_sharding_smoke.json \
            ./build-asan/bench/ablation_sharding --smoke
    fi
done

echo "all checks passed: ${presets[*]} (simd + scalar dispatch)"
