/**
 * @file
 * Randomized property tests: the inference engines are fuzzed against
 * a double-precision reference across random shapes and
 * configurations, and the cache model is swept across geometries.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/baseline_engine.hh"
#include "core/column_engine.hh"
#include "sim/cache_model.hh"
#include "util/rng.hh"

namespace mnnfast {
namespace {

/** Double-precision stable reference for o = softmax(u M_IN^T) M_OUT. */
std::vector<float>
reference(const core::KnowledgeBase &kb, const float *u, size_t nq)
{
    const size_t ns = kb.size(), ed = kb.dim();
    std::vector<float> out(nq * ed, 0.f);
    std::vector<double> dots(ns);
    for (size_t q = 0; q < nq; ++q) {
        double m = -1e300;
        for (size_t i = 0; i < ns; ++i) {
            double d = 0.0;
            for (size_t e = 0; e < ed; ++e)
                d += double(u[q * ed + e]) * kb.minRow(i)[e];
            dots[i] = d;
            m = std::max(m, d);
        }
        double s = 0.0;
        for (size_t i = 0; i < ns; ++i)
            s += std::exp(dots[i] - m);
        for (size_t i = 0; i < ns; ++i) {
            const double w = std::exp(dots[i] - m) / s;
            for (size_t e = 0; e < ed; ++e)
                out[q * ed + e] +=
                    static_cast<float>(w * kb.moutRow(i)[e]);
        }
    }
    return out;
}

/** One fuzz iteration: random shape/config, all engines vs reference. */
void
fuzzOnce(uint64_t seed)
{
    XorShiftRng rng(seed);
    const size_t ns = 1 + rng.below(3000);
    const size_t ed = 1 + rng.below(64);
    const size_t nq = 1 + rng.below(6);
    const size_t chunk = 1 + rng.below(ns + 100);
    const size_t threads = rng.below(4);
    const float scale = rng.uniformRange(0.05f, 1.2f);

    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-scale, scale);
            b[e] = rng.uniformRange(-scale, scale);
        }
        kb.addSentence(a.data(), b.data());
    }
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-scale, scale);

    const auto ref = reference(kb, u.data(), nq);

    const std::string ctx = "seed=" + std::to_string(seed)
                          + " ns=" + std::to_string(ns)
                          + " ed=" + std::to_string(ed)
                          + " nq=" + std::to_string(nq)
                          + " chunk=" + std::to_string(chunk);

    // Baseline.
    {
        core::EngineConfig cfg;
        cfg.threads = threads;
        core::BaselineEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref[i], 2e-3) << ctx;
    }
    // Column variants (plain, streaming, online-normalized).
    for (int variant = 0; variant < 3; ++variant) {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = threads;
        cfg.streaming = variant == 1;
        cfg.onlineNormalize = variant == 2;
        core::ColumnEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref[i], 2e-3)
                << ctx << " variant=" << variant;
    }
}

class EngineFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(EngineFuzz, AllEnginesMatchReference)
{
    fuzzOnce(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<uint64_t>(1, 17));

// ---------------------------------------------------------------
// Cache model geometry sweep
// ---------------------------------------------------------------

struct CacheGeometry
{
    size_t sizeKb;
    size_t assoc;
};

class CacheSweep : public ::testing::TestWithParam<CacheGeometry>
{};

TEST_P(CacheSweep, ResidentWorkingSetAlwaysHits)
{
    const auto [size_kb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = size_kb << 10;
    cfg.associativity = assoc;
    sim::CacheModel cache(cfg);

    // Walk a working set of exactly the cache capacity twice; the
    // second pass must be all hits under LRU with a cyclic pattern
    // that maps uniformly over sets.
    const uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t l = 0; l < lines; ++l)
            cache.access(l * cfg.lineBytes);
    EXPECT_EQ(cache.misses(), lines);
    EXPECT_EQ(cache.hits(), lines);
}

TEST_P(CacheSweep, HitRateDegradesGracefullyPastCapacity)
{
    const auto [size_kb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = size_kb << 10;
    cfg.associativity = assoc;

    // Cyclic overflow (2x capacity) thrashes true LRU completely.
    sim::CacheModel over(cfg);
    const uint64_t lines = 2 * cfg.sizeBytes / cfg.lineBytes;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t l = 0; l < lines; ++l)
            over.access(l * cfg.lineBytes);
    EXPECT_EQ(over.hits(), 0u);
}

TEST_P(CacheSweep, RandomAccessHitRateMatchesCapacityRatio)
{
    const auto [size_kb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = size_kb << 10;
    cfg.associativity = assoc;
    sim::CacheModel cache(cfg);

    // Uniform random lines over a 4x-capacity footprint: steady-state
    // hit rate approaches capacity / footprint = 25%.
    const uint64_t footprint_lines = 4 * cfg.sizeBytes / cfg.lineBytes;
    XorShiftRng rng(size_kb * 131 + assoc);
    for (int i = 0; i < 60000; ++i)
        cache.access(rng.below(footprint_lines) * cfg.lineBytes);

    cache.counters().resetAll();
    for (int i = 0; i < 60000; ++i)
        cache.access(rng.below(footprint_lines) * cfg.lineBytes);
    const double hr = double(cache.hits())
                    / double(cache.hits() + cache.misses());
    EXPECT_NEAR(hr, 0.25, 0.04);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheGeometry{64, 4}, CacheGeometry{64, 16},
                      CacheGeometry{256, 8}, CacheGeometry{1024, 16},
                      CacheGeometry{512, 1}),
    [](const ::testing::TestParamInfo<CacheGeometry> &info) {
        return std::to_string(info.param.sizeKb) + "KB_"
             + std::to_string(info.param.assoc) + "way";
    });

} // namespace
} // namespace mnnfast
