/**
 * @file
 * Randomized property tests: the inference engines are fuzzed against
 * a double-precision reference across random shapes and
 * configurations, and the cache model is swept across geometries.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/baseline_engine.hh"
#include "core/column_engine.hh"
#include "sim/cache_model.hh"
#include "util/bf16.hh"
#include "util/rng.hh"

namespace mnnfast {
namespace {

/** Double-precision stable reference for o = softmax(u M_IN^T) M_OUT. */
std::vector<float>
reference(const core::KnowledgeBase &kb, const float *u, size_t nq)
{
    const size_t ns = kb.size(), ed = kb.dim();
    std::vector<float> out(nq * ed, 0.f);
    std::vector<double> dots(ns);
    for (size_t q = 0; q < nq; ++q) {
        double m = -1e300;
        for (size_t i = 0; i < ns; ++i) {
            double d = 0.0;
            for (size_t e = 0; e < ed; ++e)
                d += double(u[q * ed + e]) * kb.minRow(i)[e];
            dots[i] = d;
            m = std::max(m, d);
        }
        double s = 0.0;
        for (size_t i = 0; i < ns; ++i)
            s += std::exp(dots[i] - m);
        for (size_t i = 0; i < ns; ++i) {
            const double w = std::exp(dots[i] - m) / s;
            for (size_t e = 0; e < ed; ++e)
                out[q * ed + e] +=
                    static_cast<float>(w * kb.moutRow(i)[e]);
        }
    }
    return out;
}

/** One fuzz iteration: random shape/config, all engines vs reference. */
void
fuzzOnce(uint64_t seed)
{
    XorShiftRng rng(seed);
    const size_t ns = 1 + rng.below(3000);
    const size_t ed = 1 + rng.below(64);
    const size_t nq = 1 + rng.below(6);
    const size_t chunk = 1 + rng.below(ns + 100);
    const size_t threads = rng.below(4);
    const float scale = rng.uniformRange(0.05f, 1.2f);

    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-scale, scale);
            b[e] = rng.uniformRange(-scale, scale);
        }
        kb.addSentence(a.data(), b.data());
    }
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-scale, scale);

    const auto ref = reference(kb, u.data(), nq);

    const std::string ctx = "seed=" + std::to_string(seed)
                          + " ns=" + std::to_string(ns)
                          + " ed=" + std::to_string(ed)
                          + " nq=" + std::to_string(nq)
                          + " chunk=" + std::to_string(chunk);

    // Baseline.
    {
        core::EngineConfig cfg;
        cfg.threads = threads;
        core::BaselineEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref[i], 2e-3) << ctx;
    }
    // Column variants (plain, streaming, online-normalized).
    for (int variant = 0; variant < 3; ++variant) {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = threads;
        cfg.streaming = variant == 1;
        cfg.onlineNormalize = variant == 2;
        core::ColumnEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref[i], 2e-3)
                << ctx << " variant=" << variant;
    }
}

class EngineFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(EngineFuzz, AllEnginesMatchReference)
{
    fuzzOnce(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<uint64_t>(1, 17));

// ---------------------------------------------------------------
// bf16 storage fuzz
// ---------------------------------------------------------------

/** reference() over the bf16-rounded rows (widening is exact). */
std::vector<float>
referenceBf16(const core::KnowledgeBase &kb, const float *u, size_t nq)
{
    const size_t ns = kb.size(), ed = kb.dim();
    std::vector<float> out(nq * ed, 0.f);
    std::vector<double> dots(ns);
    for (size_t q = 0; q < nq; ++q) {
        double m = -1e300;
        for (size_t i = 0; i < ns; ++i) {
            double d = 0.0;
            for (size_t e = 0; e < ed; ++e)
                d += double(u[q * ed + e])
                   * double(bf16ToFloat(kb.minRow16(i)[e]));
            dots[i] = d;
            m = std::max(m, d);
        }
        double s = 0.0;
        for (size_t i = 0; i < ns; ++i)
            s += std::exp(dots[i] - m);
        for (size_t i = 0; i < ns; ++i) {
            const double w = std::exp(dots[i] - m) / s;
            for (size_t e = 0; e < ed; ++e)
                out[q * ed + e] += static_cast<float>(
                    w * double(bf16ToFloat(kb.moutRow16(i)[e])));
        }
    }
    return out;
}

/**
 * One bf16 fuzz iteration. Two properties:
 *  1. Exactness: against the double reference over the *rounded*
 *    storage, the bf16 engines are ordinary fp32 pipelines, so the
 *    fp32 fuzz tolerance applies unchanged.
 *  2. Deviation: against the fp32 engine on the unrounded KB the
 *    outputs drift by the storage rounding only. Each dot moves by
 *    at most ~ed * scale^2 * 2^-8 and each stored M_OUT element by
 *    2^-8 relative, so with the scales kept moderate here the
 *    softmax reweighting stays in the linear regime and the output
 *    deviation is well under 0.1 * scale + the dot-shift term.
 */
void
fuzzBf16Once(uint64_t seed)
{
    XorShiftRng rng(seed);
    const size_t ns = 1 + rng.below(3000);
    const size_t ed = 1 + rng.below(64);
    const size_t nq = 1 + rng.below(6);
    const size_t chunk = 1 + rng.below(ns + 100);
    const size_t threads = rng.below(4);
    const float scale = rng.uniformRange(0.05f, 0.4f);

    core::KnowledgeBase kb32(ed);
    core::KnowledgeBase kb16(ed, core::Precision::BF16);
    kb32.reserve(ns);
    kb16.reserve(ns);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-scale, scale);
            b[e] = rng.uniformRange(-scale, scale);
        }
        kb32.addSentence(a.data(), b.data());
        kb16.addSentence(a.data(), b.data());
    }
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-scale, scale);

    const std::string ctx = "seed=" + std::to_string(seed)
                          + " ns=" + std::to_string(ns)
                          + " ed=" + std::to_string(ed)
                          + " nq=" + std::to_string(nq)
                          + " chunk=" + std::to_string(chunk)
                          + " scale=" + std::to_string(scale);

    // 1. Exactness vs the rounded-storage reference.
    const auto ref16 = referenceBf16(kb16, u.data(), nq);
    {
        core::EngineConfig cfg;
        cfg.threads = threads;
        core::BaselineEngine engine(kb16, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref16[i], 2e-3) << ctx << " baseline";
    }
    {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = threads;
        cfg.streaming = true;
        core::ColumnEngine engine(kb16, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref16[i], 2e-3) << ctx << " column";
    }

    // 2. Deviation vs the fp32 engine, zero-skipping off and on.
    const double dot_shift =
        double(ed) * double(scale) * double(scale) * 0x1p-8;
    const double bound = 0.1 * double(scale) + 2.0 * dot_shift + 1e-3;
    for (float threshold : {0.0f, 1e-3f}) {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = threads;
        cfg.skipThreshold = threshold;
        core::ColumnEngine e32(kb32, cfg);
        core::ColumnEngine e16(kb16, cfg);
        std::vector<float> o32(nq * ed), o16(nq * ed);
        e32.inferBatch(u.data(), nq, o32.data());
        e16.inferBatch(u.data(), nq, o16.data());
        for (size_t i = 0; i < o32.size(); ++i)
            ASSERT_NEAR(o32[i], o16[i], bound)
                << ctx << " th=" << threshold;
    }
}

class Bf16EngineFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Bf16EngineFuzz, MatchesRoundedReferenceAndBoundsDeviation)
{
    fuzzBf16Once(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Bf16EngineFuzz,
                         ::testing::Range<uint64_t>(101, 113));

// ---------------------------------------------------------------
// int8 engine fuzz
// ---------------------------------------------------------------

/** Double-precision reference over the *dequantized* i8 storage. */
std::vector<float>
referenceI8(const core::KnowledgeBase &kb, const float *u, size_t nq)
{
    const size_t ns = kb.size();
    const size_t ed = kb.dim();
    std::vector<float> out(nq * ed, 0.f);
    std::vector<double> dots(ns);
    for (size_t q = 0; q < nq; ++q) {
        double m = -std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < ns; ++i) {
            double d = 0.0;
            const double s = kb.minScale(i), z = kb.minZero(i);
            for (size_t e = 0; e < ed; ++e)
                d += double(u[q * ed + e])
                   * (s * kb.minRow8(i)[e] + z);
            dots[i] = d;
            m = std::max(m, d);
        }
        double s = 0.0;
        for (size_t i = 0; i < ns; ++i)
            s += std::exp(dots[i] - m);
        for (size_t i = 0; i < ns; ++i) {
            const double w = std::exp(dots[i] - m) / s;
            const double os = kb.moutScale(i), oz = kb.moutZero(i);
            for (size_t e = 0; e < ed; ++e)
                out[q * ed + e] += static_cast<float>(
                    w * (os * kb.moutRow8(i)[e] + oz));
        }
    }
    return out;
}

/**
 * One i8 fuzz iteration, mirroring the bf16 fuzz. Two properties:
 *  1. Exactness: against the double reference over the *dequantized*
 *     storage, the i8 engines are ordinary fp32 pipelines.
 *  2. Deviation: against the fp32 engine on the unquantized KB the
 *     outputs drift by the quantization error only. With per-chunk
 *     range [lo, hi] within [-scale, scale], each dequantized element
 *     errs by at most scale_q/2 = (hi-lo)/510 <= scale/255 — i.e. the
 *     same ~2^-8 relative error as bf16 storage at these magnitudes —
 *     so the analytic bound from the bf16 fuzz transfers unchanged:
 *     each dot moves by <= ed * scale * (scale * 2^-8) and the output
 *     deviation stays under 0.1 * scale + 2 * dot_shift + 1e-3
 *     (DESIGN.md §10 derives the per-element bound).
 */
void
fuzzI8Once(uint64_t seed)
{
    XorShiftRng rng(seed);
    const size_t ns = 1 + rng.below(3000);
    const size_t ed = 1 + rng.below(64);
    const size_t nq = 1 + rng.below(6);
    const size_t chunk = 1 + rng.below(ns + 100);
    const size_t qchunk = 1 + rng.below(1200);
    const size_t threads = rng.below(4);
    const float scale = rng.uniformRange(0.05f, 0.4f);

    core::KnowledgeBase kb32(ed);
    core::KnowledgeBase kb8(ed, core::Precision::I8, qchunk);
    kb32.reserve(ns);
    kb8.reserve(ns);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-scale, scale);
            b[e] = rng.uniformRange(-scale, scale);
        }
        kb32.addSentence(a.data(), b.data());
        kb8.addSentence(a.data(), b.data());
    }
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-scale, scale);

    const std::string ctx = "seed=" + std::to_string(seed)
                          + " ns=" + std::to_string(ns)
                          + " ed=" + std::to_string(ed)
                          + " nq=" + std::to_string(nq)
                          + " chunk=" + std::to_string(chunk)
                          + " qchunk=" + std::to_string(qchunk)
                          + " scale=" + std::to_string(scale);

    // 1. Exactness vs the dequantized-storage reference.
    const auto ref8 = referenceI8(kb8, u.data(), nq);
    {
        core::EngineConfig cfg;
        cfg.threads = threads;
        core::BaselineEngine engine(kb8, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref8[i], 2e-3) << ctx << " baseline";
    }
    {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = threads;
        cfg.streaming = true;
        core::ColumnEngine engine(kb8, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_NEAR(o[i], ref8[i], 2e-3) << ctx << " column";
    }

    // 2. Deviation vs the fp32 engine, zero-skipping off and on.
    const double dot_shift =
        double(ed) * double(scale) * double(scale) * 0x1p-8;
    const double bound = 0.1 * double(scale) + 2.0 * dot_shift + 1e-3;
    for (float threshold : {0.0f, 1e-3f}) {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = threads;
        cfg.skipThreshold = threshold;
        core::ColumnEngine e32(kb32, cfg);
        core::ColumnEngine e8(kb8, cfg);
        std::vector<float> o32(nq * ed), o8(nq * ed);
        e32.inferBatch(u.data(), nq, o32.data());
        e8.inferBatch(u.data(), nq, o8.data());
        for (size_t i = 0; i < o32.size(); ++i)
            ASSERT_NEAR(o32[i], o8[i], bound)
                << ctx << " th=" << threshold;
    }
}

class I8EngineFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(I8EngineFuzz, MatchesDequantizedReferenceAndBoundsDeviation)
{
    fuzzI8Once(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, I8EngineFuzz,
                         ::testing::Range<uint64_t>(201, 213));

// ---------------------------------------------------------------
// Cache model geometry sweep
// ---------------------------------------------------------------

struct CacheGeometry
{
    size_t sizeKb;
    size_t assoc;
};

class CacheSweep : public ::testing::TestWithParam<CacheGeometry>
{};

TEST_P(CacheSweep, ResidentWorkingSetAlwaysHits)
{
    const auto [size_kb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = size_kb << 10;
    cfg.associativity = assoc;
    sim::CacheModel cache(cfg);

    // Walk a working set of exactly the cache capacity twice; the
    // second pass must be all hits under LRU with a cyclic pattern
    // that maps uniformly over sets.
    const uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t l = 0; l < lines; ++l)
            cache.access(l * cfg.lineBytes);
    EXPECT_EQ(cache.misses(), lines);
    EXPECT_EQ(cache.hits(), lines);
}

TEST_P(CacheSweep, HitRateDegradesGracefullyPastCapacity)
{
    const auto [size_kb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = size_kb << 10;
    cfg.associativity = assoc;

    // Cyclic overflow (2x capacity) thrashes true LRU completely.
    sim::CacheModel over(cfg);
    const uint64_t lines = 2 * cfg.sizeBytes / cfg.lineBytes;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t l = 0; l < lines; ++l)
            over.access(l * cfg.lineBytes);
    EXPECT_EQ(over.hits(), 0u);
}

TEST_P(CacheSweep, RandomAccessHitRateMatchesCapacityRatio)
{
    const auto [size_kb, assoc] = GetParam();
    sim::CacheConfig cfg;
    cfg.sizeBytes = size_kb << 10;
    cfg.associativity = assoc;
    sim::CacheModel cache(cfg);

    // Uniform random lines over a 4x-capacity footprint: steady-state
    // hit rate approaches capacity / footprint = 25%.
    const uint64_t footprint_lines = 4 * cfg.sizeBytes / cfg.lineBytes;
    XorShiftRng rng(size_kb * 131 + assoc);
    for (int i = 0; i < 60000; ++i)
        cache.access(rng.below(footprint_lines) * cfg.lineBytes);

    cache.counters().resetAll();
    for (int i = 0; i < 60000; ++i)
        cache.access(rng.below(footprint_lines) * cfg.lineBytes);
    const double hr = double(cache.hits())
                    / double(cache.hits() + cache.misses());
    EXPECT_NEAR(hr, 0.25, 0.04);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheGeometry{64, 4}, CacheGeometry{64, 16},
                      CacheGeometry{256, 8}, CacheGeometry{1024, 16},
                      CacheGeometry{512, 1}),
    [](const ::testing::TestParamInfo<CacheGeometry> &info) {
        return std::to_string(info.param.sizeKb) + "KB_"
             + std::to_string(info.param.assoc) + "way";
    });

} // namespace
} // namespace mnnfast
