/**
 * @file
 * Unit tests for src/stats: counters, histograms, tables, CSV.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "stats/counter.hh"
#include "stats/csv.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace mnnfast::stats {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(5);
    ++c;
    c += 3;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(CounterGroup, CreatesOnFirstUse)
{
    CounterGroup g;
    g["hits"].add(2);
    g["misses"].add(1);
    EXPECT_EQ(g.value("hits"), 2u);
    EXPECT_EQ(g.value("misses"), 1u);
    EXPECT_EQ(g.value("unknown"), 0u);
}

TEST(CounterGroup, ResetAllClearsEverything)
{
    CounterGroup g;
    g["a"].add(7);
    g["b"].add(9);
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(CounterGroup, IterationIsNameOrdered)
{
    CounterGroup g;
    g["zeta"].add();
    g["alpha"].add();
    auto it = g.all().begin();
    EXPECT_EQ(it->first, "alpha");
}

TEST(Histogram, BinsCoverRangeEvenly)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.bins(), 10u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
}

TEST(Histogram, SamplesLandInCorrectBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);  // bin 0
    h.add(0.3);  // bin 1
    h.add(0.55); // bin 2
    h.add(0.99); // bin 3
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, UnderAndOverflowTracked)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.5);
    h.add(1.0); // hi is exclusive
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, MeanIncludesAllSamples)
{
    Histogram h(0.0, 10.0, 5);
    h.add(2.0);
    h.add(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, FractionBelowByBinEdges)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i * 0.1 + 0.05); // one sample per bin
    EXPECT_NEAR(h.fractionBelow(0.5), 0.5, 1e-9);
    EXPECT_NEAR(h.fractionBelow(1.0), 1.0, 1e-9);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, QuantileInterpolatesWithinBin)
{
    // 100 samples spread one per centile over [0, 1): the p-quantile
    // of the recorded distribution is ~p itself, and interpolation
    // keeps the error below one bin width.
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i * 0.01);
    EXPECT_NEAR(h.quantile(0.50), 0.50, 0.1);
    EXPECT_NEAR(h.quantile(0.95), 0.95, 0.1);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
    // Quantiles are monotone in p.
    EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(Histogram, QuantileSingleBinUsesLinearPosition)
{
    Histogram h(0.0, 1.0, 1);
    for (int i = 0; i < 10; ++i)
        h.add(0.5);
    // The histogram cannot resolve inside a bin: the quantile is the
    // linear position of the rank within [binLow, binHigh).
    EXPECT_NEAR(h.quantile(0.5), 0.5, 1e-9);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 1e-9);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileAttributesUnderAndOverflowToBounds)
{
    Histogram h(0.0, 1.0, 4);
    // 40% of the mass below lo, 40% above hi, 20% mid-range.
    for (int i = 0; i < 4; ++i)
        h.add(-1.0);
    for (int i = 0; i < 4; ++i)
        h.add(5.0);
    h.add(0.5);
    h.add(0.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.2), 0.0); // inside underflow mass
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0); // inside overflow mass
    const double mid = h.quantile(0.5);
    EXPECT_GE(mid, 0.25);
    EXPECT_LE(mid, 0.75);
}

TEST(Histogram, QuantileIgnoresNonFiniteMass)
{
    // A histogram that only ever saw non-finite samples is empty as
    // far as quantile() is concerned (pinned: returns the empty
    // sentinel 0, not lo or a poisoned value).
    Histogram h(1.0, 2.0, 4);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

    // Once finite mass arrives, quantiles are computed over it alone:
    // the quarantined samples neither shift ranks nor pull toward the
    // range bounds the infinities would have escaped past.
    h.add(1.5);
    EXPECT_EQ(h.count(), 1u);
    const double q = h.quantile(0.5);
    EXPECT_GE(q, 1.25);
    EXPECT_LE(q, 1.75);
}

TEST(Histogram, QuantileRejectsOutOfRangeProbability)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    EXPECT_EXIT(h.quantile(-0.1), ::testing::ExitedWithCode(1),
                "outside");
    EXPECT_EXIT(h.quantile(1.5), ::testing::ExitedWithCode(1),
                "outside");
}

TEST(Histogram, MergeAccumulatesAllMass)
{
    Histogram a(0.0, 1.0, 4);
    Histogram b(0.0, 1.0, 4);
    a.add(0.1);
    a.add(-2.0); // underflow
    b.add(0.9);
    b.add(3.0); // overflow
    b.add(0.6);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.binCount(0), 1u);
    EXPECT_EQ(a.binCount(2), 1u);
    EXPECT_EQ(a.binCount(3), 1u);
    // Mean covers the merged sample set (0.1 - 2 + 0.9 + 3 + 0.6)/5.
    EXPECT_NEAR(a.mean(), 0.52, 1e-12);
    // The source histogram is untouched.
    EXPECT_EQ(b.count(), 3u);
}

TEST(Histogram, MergeMatchesSingleHistogramQuantiles)
{
    // Splitting a sample stream across two same-geometry histograms
    // and merging must give the same quantiles as one histogram fed
    // everything — the per-worker aggregation contract.
    Histogram whole(0.0, 1.0, 64);
    Histogram part1(0.0, 1.0, 64);
    Histogram part2(0.0, 1.0, 64);
    for (int i = 0; i < 1000; ++i) {
        const double x = (i % 100) * 0.01;
        whole.add(x);
        (i % 2 ? part1 : part2).add(x);
    }
    part1.merge(part2);
    EXPECT_EQ(part1.count(), whole.count());
    for (double p : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(part1.quantile(p), whole.quantile(p));
}

TEST(Histogram, MergeRejectsMismatchedGeometry)
{
    Histogram a(0.0, 1.0, 4);
    Histogram bins(0.0, 1.0, 8);
    Histogram range(0.0, 2.0, 4);
    EXPECT_EXIT(a.merge(bins), ::testing::ExitedWithCode(1),
                "geometry");
    EXPECT_EXIT(a.merge(range), ::testing::ExitedWithCode(1),
                "geometry");
}

TEST(Histogram, ToStringRendersBars)
{
    Histogram h(0.0, 1.0, 2);
    for (int i = 0; i < 8; ++i)
        h.add(0.25);
    h.add(0.75);
    const std::string s = h.toString(8);
    EXPECT_NE(s.find("########"), std::string::npos);
}

TEST(Histogram, NonFiniteSamplesAreQuarantined)
{
    // NaN reaching the bin computation is UB (casting NaN * bins to an
    // integer); infinities would poison the running sum. add() must
    // divert all three to a dedicated counter.
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 1u); // finite samples only
    EXPECT_EQ(h.nonFinite(), 3u);
    EXPECT_EQ(h.underflow(), 0u); // -inf did not land in underflow
    EXPECT_EQ(h.overflow(), 0u);  // +inf did not land in overflow
    EXPECT_DOUBLE_EQ(h.mean(), 0.5); // sum untouched by non-finites

    // Merge carries the quarantine count; reset clears it.
    Histogram other(0.0, 1.0, 4);
    other.add(std::numeric_limits<double>::quiet_NaN());
    h.merge(other);
    EXPECT_EQ(h.nonFinite(), 4u);
    h.reset();
    EXPECT_EQ(h.nonFinite(), 0u);
}

TEST(Histogram, ToStringRendersUnderflowAndOverflowRows)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    for (int i = 0; i < 3; ++i)
        h.add(-1.0); // underflow
    for (int i = 0; i < 2; ++i)
        h.add(5.0); // overflow
    h.add(std::numeric_limits<double>::quiet_NaN());
    const std::string s = h.toString(6);
    // Escaped mass gets its own rows and participates in bar scaling
    // (under = 3 is the peak, so its bar is the full width).
    EXPECT_NE(s.find("<0"), std::string::npos);
    EXPECT_NE(s.find(">=1"), std::string::npos);
    EXPECT_NE(s.find("######"), std::string::npos);
    EXPECT_NE(s.find("non-finite: 1"), std::string::npos);

    // A histogram that captured everything renders neither row.
    Histogram clean(0.0, 1.0, 2);
    clean.add(0.25);
    const std::string cs = clean.toString(6);
    EXPECT_EQ(cs.find("<0"), std::string::npos);
    EXPECT_EQ(cs.find(">="), std::string::npos);
    EXPECT_EQ(cs.find("non-finite"), std::string::npos);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(uint64_t{42}), "42");
}

TEST(Table, RowArityMismatchIsFatal)
{
    Table t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "cells");
}

TEST(Csv, WritesRowsAndEscapes)
{
    const std::string path = ::testing::TempDir() + "csv_test.csv";
    {
        CsvWriter csv(path);
        csv.writeRow({"a", "b,c", "d\"e"});
        csv.writeRow({"1", "2", "3"});
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
    EXPECT_EQ(line2, "1,2,3");
    std::remove(path.c_str());
}

} // namespace
} // namespace mnnfast::stats
