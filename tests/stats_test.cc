/**
 * @file
 * Unit tests for src/stats: counters, histograms, tables, CSV.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/counter.hh"
#include "stats/csv.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace mnnfast::stats {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(5);
    ++c;
    c += 3;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(CounterGroup, CreatesOnFirstUse)
{
    CounterGroup g;
    g["hits"].add(2);
    g["misses"].add(1);
    EXPECT_EQ(g.value("hits"), 2u);
    EXPECT_EQ(g.value("misses"), 1u);
    EXPECT_EQ(g.value("unknown"), 0u);
}

TEST(CounterGroup, ResetAllClearsEverything)
{
    CounterGroup g;
    g["a"].add(7);
    g["b"].add(9);
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

TEST(CounterGroup, IterationIsNameOrdered)
{
    CounterGroup g;
    g["zeta"].add();
    g["alpha"].add();
    auto it = g.all().begin();
    EXPECT_EQ(it->first, "alpha");
}

TEST(Histogram, BinsCoverRangeEvenly)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.bins(), 10u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
}

TEST(Histogram, SamplesLandInCorrectBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);  // bin 0
    h.add(0.3);  // bin 1
    h.add(0.55); // bin 2
    h.add(0.99); // bin 3
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, UnderAndOverflowTracked)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.5);
    h.add(1.0); // hi is exclusive
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, MeanIncludesAllSamples)
{
    Histogram h(0.0, 10.0, 5);
    h.add(2.0);
    h.add(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, FractionBelowByBinEdges)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i * 0.1 + 0.05); // one sample per bin
    EXPECT_NEAR(h.fractionBelow(0.5), 0.5, 1e-9);
    EXPECT_NEAR(h.fractionBelow(1.0), 1.0, 1e-9);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ToStringRendersBars)
{
    Histogram h(0.0, 1.0, 2);
    for (int i = 0; i < 8; ++i)
        h.add(0.25);
    h.add(0.75);
    const std::string s = h.toString(8);
    EXPECT_NE(s.find("########"), std::string::npos);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(uint64_t{42}), "42");
}

TEST(Table, RowArityMismatchIsFatal)
{
    Table t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "cells");
}

TEST(Csv, WritesRowsAndEscapes)
{
    const std::string path = ::testing::TempDir() + "csv_test.csv";
    {
        CsvWriter csv(path);
        csv.writeRow({"a", "b,c", "d\"e"});
        csv.writeRow({"1", "2", "3"});
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
    EXPECT_EQ(line2, "1,2,3");
    std::remove(path.c_str());
}

} // namespace
} // namespace mnnfast::stats
