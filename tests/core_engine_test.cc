/**
 * @file
 * Tests for the inference engines: algebraic equivalence of the
 * column-based lazy softmax with the baseline dataflow, chunk-size
 * invariance, streaming equivalence, zero-skipping safety, online
 * normalization, threading, and the per-engine statistics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "blas/kernels.hh"
#include "core/baseline_engine.hh"
#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "util/bf16.hh"
#include "util/rng.hh"

namespace mnnfast::core {
namespace {

/** Build a KB of ns random sentences with small-magnitude values. */
KnowledgeBase
randomKb(size_t ns, size_t ed, uint64_t seed, float scale = 0.5f,
         Precision prec = Precision::F32,
         size_t i8_chunk_rows = kI8ChunkRowsDefault)
{
    KnowledgeBase kb(ed, prec, i8_chunk_rows);
    kb.reserve(ns);
    XorShiftRng rng(seed);
    std::vector<float> min_row(ed), mout_row(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            min_row[e] = rng.uniformRange(-scale, scale);
            mout_row[e] = rng.uniformRange(-scale, scale);
        }
        kb.addSentence(min_row.data(), mout_row.data());
    }
    return kb;
}

std::vector<float>
randomBatch(size_t nq, size_t ed, uint64_t seed, float scale = 0.5f)
{
    XorShiftRng rng(seed);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-scale, scale);
    return u;
}

/** Reference: direct softmax-weighted sum in double precision. */
std::vector<float>
referenceOutput(const KnowledgeBase &kb, const float *u, size_t nq)
{
    const size_t ns = kb.size();
    const size_t ed = kb.dim();
    std::vector<float> out(nq * ed, 0.f);
    std::vector<double> p(ns);
    for (size_t q = 0; q < nq; ++q) {
        double s = 0.0;
        for (size_t i = 0; i < ns; ++i) {
            double dot = 0.0;
            for (size_t e = 0; e < ed; ++e)
                dot += double(u[q * ed + e]) * kb.minRow(i)[e];
            p[i] = std::exp(dot);
            s += p[i];
        }
        for (size_t i = 0; i < ns; ++i) {
            const double w = p[i] / s;
            for (size_t e = 0; e < ed; ++e)
                out[q * ed + e] +=
                    static_cast<float>(w * kb.moutRow(i)[e]);
        }
    }
    return out;
}

void
expectClose(const std::vector<float> &a, const std::vector<float> &b,
            double tol = 1e-4)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], tol) << "index " << i;
}

TEST(BaselineEngine, MatchesReference)
{
    const size_t ns = 500, ed = 16, nq = 3;
    const KnowledgeBase kb = randomKb(ns, ed, 1);
    const auto u = randomBatch(nq, ed, 2);

    EngineConfig cfg;
    BaselineEngine engine(kb, cfg);
    std::vector<float> o(nq * ed);
    engine.inferBatch(u.data(), nq, o.data());

    expectClose(o, referenceOutput(kb, u.data(), nq));
}

TEST(BaselineEngine, EmptyKbPanics)
{
    KnowledgeBase kb(8);
    EngineConfig cfg;
    BaselineEngine engine(kb, cfg);
    std::vector<float> u(8, 0.f), o(8);
    EXPECT_DEATH(engine.inferBatch(u.data(), 1, o.data()), "empty");
}

struct ColumnCase
{
    size_t ns;
    size_t ed;
    size_t nq;
    size_t chunk;
    size_t threads;
};

class ColumnEquivalence : public ::testing::TestWithParam<ColumnCase>
{};

TEST_P(ColumnEquivalence, MatchesBaselineDataflow)
{
    const auto c = GetParam();
    const KnowledgeBase kb = randomKb(c.ns, c.ed, 3);
    const auto u = randomBatch(c.nq, c.ed, 4);

    EngineConfig base_cfg;
    BaselineEngine baseline(kb, base_cfg);
    std::vector<float> o_base(c.nq * c.ed);
    baseline.inferBatch(u.data(), c.nq, o_base.data());

    EngineConfig col_cfg;
    col_cfg.chunkSize = c.chunk;
    col_cfg.threads = c.threads;
    ColumnEngine column(kb, col_cfg);
    std::vector<float> o_col(c.nq * c.ed);
    column.inferBatch(u.data(), c.nq, o_col.data());

    expectClose(o_base, o_col);
}

TEST_P(ColumnEquivalence, StreamingDoesNotChangeResults)
{
    const auto c = GetParam();
    const KnowledgeBase kb = randomKb(c.ns, c.ed, 5);
    const auto u = randomBatch(c.nq, c.ed, 6);

    EngineConfig plain_cfg;
    plain_cfg.chunkSize = c.chunk;
    plain_cfg.threads = c.threads;
    ColumnEngine plain(kb, plain_cfg);

    EngineConfig stream_cfg = plain_cfg;
    stream_cfg.streaming = true;
    ColumnEngine streaming(kb, stream_cfg);

    std::vector<float> o_plain(c.nq * c.ed), o_stream(c.nq * c.ed);
    plain.inferBatch(u.data(), c.nq, o_plain.data());
    streaming.inferBatch(u.data(), c.nq, o_stream.data());
    expectClose(o_plain, o_stream, 1e-6);
}

TEST_P(ColumnEquivalence, OnlineNormalizeMatchesPlain)
{
    const auto c = GetParam();
    const KnowledgeBase kb = randomKb(c.ns, c.ed, 7);
    const auto u = randomBatch(c.nq, c.ed, 8);

    EngineConfig plain_cfg;
    plain_cfg.chunkSize = c.chunk;
    plain_cfg.threads = c.threads;
    ColumnEngine plain(kb, plain_cfg);

    EngineConfig online_cfg = plain_cfg;
    online_cfg.onlineNormalize = true;
    ColumnEngine online(kb, online_cfg);

    std::vector<float> o_plain(c.nq * c.ed), o_online(c.nq * c.ed);
    plain.inferBatch(u.data(), c.nq, o_plain.data());
    online.inferBatch(u.data(), c.nq, o_online.data());
    expectClose(o_plain, o_online, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ColumnEquivalence,
    ::testing::Values(ColumnCase{100, 8, 1, 100, 0},   // one chunk
                      ColumnCase{100, 8, 1, 7, 0},     // ragged chunks
                      ColumnCase{1000, 16, 4, 128, 0}, // batch
                      ColumnCase{1000, 16, 4, 128, 3}, // threads
                      ColumnCase{997, 25, 2, 100, 2},  // prime ns
                      ColumnCase{64, 48, 8, 1, 0}));   // chunk of 1

TEST(ColumnEngine, ChunkSizeInvariance)
{
    const size_t ns = 777, ed = 12, nq = 2;
    const KnowledgeBase kb = randomKb(ns, ed, 9);
    const auto u = randomBatch(nq, ed, 10);

    std::vector<float> first;
    for (size_t chunk : {1ul, 10ul, 100ul, 777ul, 10000ul}) {
        EngineConfig cfg;
        cfg.chunkSize = chunk;
        ColumnEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        if (first.empty())
            first = o;
        else
            expectClose(first, o, 1e-5);
    }
}

TEST(ColumnEngine, ThreadCountInvariance)
{
    const size_t ns = 2048, ed = 16, nq = 3;
    const KnowledgeBase kb = randomKb(ns, ed, 11);
    const auto u = randomBatch(nq, ed, 12);

    std::vector<float> first;
    for (size_t threads : {0ul, 1ul, 2ul, 5ul}) {
        EngineConfig cfg;
        cfg.chunkSize = 100;
        cfg.threads = threads;
        ColumnEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        if (first.empty())
            first = o;
        else
            expectClose(first, o, 1e-5);
    }
}

TEST(ColumnEngine, OnlineNormalizeSurvivesLargeLogits)
{
    // Scale 8 gives dot products around +-100: raw exp overflows to
    // inf, online rescaling must stay finite and match a double-
    // precision stable reference.
    const size_t ns = 300, ed = 16, nq = 2;
    const KnowledgeBase kb = randomKb(ns, ed, 13, /*scale=*/8.f);
    const auto u = randomBatch(nq, ed, 14, /*scale=*/8.f);

    EngineConfig cfg;
    cfg.chunkSize = 64;
    cfg.onlineNormalize = true;
    ColumnEngine engine(kb, cfg);
    std::vector<float> o(nq * ed);
    engine.inferBatch(u.data(), nq, o.data());

    // Stable double-precision reference with max subtraction.
    const size_t q = 0;
    std::vector<double> dots(ns);
    double m = -1e300;
    for (size_t i = 0; i < ns; ++i) {
        double d = 0.0;
        for (size_t e = 0; e < ed; ++e)
            d += double(u[q * ed + e]) * kb.minRow(i)[e];
        dots[i] = d;
        m = std::max(m, d);
    }
    double s = 0.0;
    for (size_t i = 0; i < ns; ++i)
        s += std::exp(dots[i] - m);
    std::vector<double> ref(ed, 0.0);
    for (size_t i = 0; i < ns; ++i) {
        const double w = std::exp(dots[i] - m) / s;
        for (size_t e = 0; e < ed; ++e)
            ref[e] += w * kb.moutRow(i)[e];
    }
    for (size_t e = 0; e < ed; ++e) {
        ASSERT_TRUE(std::isfinite(o[e]));
        ASSERT_NEAR(o[e], ref[e], 1e-3);
    }
}

TEST(ColumnEngine, ZeroSkipIsConservative)
{
    // Every row skipped by the engine must have true probability
    // below the threshold (the running-sum test can only under-skip).
    const size_t ns = 2000, ed = 16, nq = 1;
    const KnowledgeBase kb = randomKb(ns, ed, 15, /*scale=*/1.5f);
    const auto u = randomBatch(nq, ed, 16, /*scale=*/1.5f);
    const float th = 0.001f;

    EngineConfig cfg;
    cfg.chunkSize = 100;
    cfg.skipThreshold = th;
    ColumnEngine engine(kb, cfg);
    std::vector<float> o(nq * ed);
    engine.inferBatch(u.data(), nq, o.data());

    const uint64_t skipped = engine.counters().value("rows_skipped");
    const uint64_t kept = engine.counters().value("rows_kept");
    EXPECT_EQ(skipped + kept, ns);
    EXPECT_GT(skipped, 0u) << "test needs some skipping to be useful";

    // Count rows whose true probability is >= th; the engine must
    // have kept at least all of them.
    std::vector<double> p(ns);
    double s = 0.0;
    for (size_t i = 0; i < ns; ++i) {
        double d = 0.0;
        for (size_t e = 0; e < ed; ++e)
            d += double(u[e]) * kb.minRow(i)[e];
        p[i] = std::exp(d);
        s += p[i];
    }
    uint64_t must_keep = 0;
    for (size_t i = 0; i < ns; ++i)
        must_keep += p[i] / s >= th;
    EXPECT_GE(kept, must_keep);
}

TEST(ColumnEngine, ZeroSkipOutputStaysCloseToExact)
{
    const size_t ns = 2000, ed = 16, nq = 2;
    const KnowledgeBase kb = randomKb(ns, ed, 17, 1.5f);
    const auto u = randomBatch(nq, ed, 18, 1.5f);

    EngineConfig exact_cfg;
    exact_cfg.chunkSize = 100;
    ColumnEngine exact(kb, exact_cfg);
    std::vector<float> o_exact(nq * ed);
    exact.inferBatch(u.data(), nq, o_exact.data());

    EngineConfig skip_cfg = exact_cfg;
    skip_cfg.skipThreshold = 1e-4f;
    ColumnEngine skip(kb, skip_cfg);
    std::vector<float> o_skip(nq * ed);
    skip.inferBatch(u.data(), nq, o_skip.data());

    // Dropped mass is at most ns * th of the total, so outputs agree
    // to roughly that order.
    expectClose(o_exact, o_skip, 0.3);
}

TEST(ColumnEngine, DivisionCountIsEmbeddingDimensional)
{
    const size_t ns = 4096, ed = 24, nq = 2;
    const KnowledgeBase kb = randomKb(ns, ed, 19);
    const auto u = randomBatch(nq, ed, 20);

    EngineConfig base_cfg;
    BaselineEngine baseline(kb, base_cfg);
    std::vector<float> o(nq * ed);
    baseline.inferBatch(u.data(), nq, o.data());
    EXPECT_EQ(baseline.counters().value("div_ops"), nq * ns);

    EngineConfig col_cfg;
    ColumnEngine column(kb, col_cfg);
    column.inferBatch(u.data(), nq, o.data());
    EXPECT_EQ(column.counters().value("div_ops"), nq * ed);
}

TEST(ColumnEngine, IntermediateFootprintIsChunkSized)
{
    const size_t ns = 50000, ed = 16, nq = 4;
    const KnowledgeBase kb = randomKb(ns, ed, 21);
    const auto u = randomBatch(nq, ed, 22);
    std::vector<float> o(nq * ed);

    EngineConfig base_cfg;
    BaselineEngine baseline(kb, base_cfg);
    baseline.inferBatch(u.data(), nq, o.data());

    EngineConfig col_cfg;
    col_cfg.chunkSize = 1000;
    ColumnEngine column(kb, col_cfg);
    column.inferBatch(u.data(), nq, o.data());

    const uint64_t base_bytes =
        baseline.counters().value("intermediate_bytes");
    const uint64_t col_bytes =
        column.counters().value("intermediate_bytes");
    // Both engines report their full retained scratch. The baseline
    // spills three nq x ns buffers plus its step-3 accumulators; the
    // column engine's footprint is the chunk tile plus the (small)
    // per-group partials — chunk-sized, never ns-sized.
    const uint64_t tile_bytes = uint64_t(nq) * 1000 * sizeof(float);
    EXPECT_GE(base_bytes, 3ull * nq * ns * sizeof(float));
    EXPECT_GE(col_bytes, tile_bytes);
    EXPECT_LE(col_bytes, 2 * tile_bytes);
    EXPECT_LT(col_bytes * 10, base_bytes);

    // The arenas are persistent: a second call at the same batch size
    // reuses the retained capacity, so the reported footprint is
    // stable (no per-call growth).
    column.inferBatch(u.data(), nq, o.data());
    EXPECT_EQ(column.counters().value("intermediate_bytes"), col_bytes);
}

TEST(ColumnEngine, ChunkSizeIsClampedToKbSize)
{
    const size_t ns = 100, ed = 8;
    const KnowledgeBase kb = randomKb(ns, ed, 71);

    EngineConfig cfg;
    cfg.chunkSize = 100000; // far larger than the KB
    ColumnEngine engine(kb, cfg);
    EXPECT_EQ(engine.chunkSize(), ns);

    const auto u = randomBatch(1, ed, 72);
    std::vector<float> o(ed);
    engine.inferBatch(u.data(), 1, o.data());
    EXPECT_EQ(engine.counters().value("chunks_processed"), 1u);
    // Scratch reflects the clamped chunk, not the requested one.
    EXPECT_LT(engine.counters().value("intermediate_bytes"),
              100000 * sizeof(float));

    // A chunk not exceeding the KB is left alone.
    cfg.chunkSize = 64;
    EXPECT_EQ(ColumnEngine(kb, cfg).chunkSize(), 64u);

    // Zero stays fatal.
    cfg.chunkSize = 0;
    EXPECT_DEATH(ColumnEngine(kb, cfg), "nonzero");
}

TEST(ColumnEngine, ChunkCounterMatchesGeometry)
{
    const size_t ns = 1050;
    const KnowledgeBase kb = randomKb(ns, 8, 23);
    const auto u = randomBatch(1, 8, 24);
    std::vector<float> o(8);

    EngineConfig cfg;
    cfg.chunkSize = 100;
    ColumnEngine engine(kb, cfg);
    engine.inferBatch(u.data(), 1, o.data());
    EXPECT_EQ(engine.counters().value("chunks_processed"), 11u);
}

TEST(ColumnEngine, NamesReflectConfiguration)
{
    const KnowledgeBase kb = randomKb(10, 4, 25);
    EngineConfig cfg;
    EXPECT_STREQ(ColumnEngine(kb, cfg).name(), "column");
    cfg.streaming = true;
    EXPECT_STREQ(ColumnEngine(kb, cfg).name(), "column+streaming");
    cfg.skipThreshold = 0.1f;
    EXPECT_STREQ(ColumnEngine(kb, cfg).name(), "mnnfast");
    cfg.streaming = false;
    EXPECT_STREQ(ColumnEngine(kb, cfg).name(), "column+zskip");
}

TEST(ColumnEngine, BreakdownCoversAllPhases)
{
    const KnowledgeBase kb = randomKb(20000, 32, 26);
    const auto u = randomBatch(2, 32, 27);
    std::vector<float> o(2 * 32);

    EngineConfig cfg;
    cfg.chunkSize = 500;
    ColumnEngine engine(kb, cfg);
    engine.inferBatch(u.data(), 2, o.data());

    const OpBreakdown &bd = engine.breakdown();
    EXPECT_GT(bd.innerProduct, 0.0);
    EXPECT_GT(bd.softmax, 0.0);
    EXPECT_GT(bd.weightedSum, 0.0);
    EXPECT_GT(bd.total(), 0.0);

    engine.clearBreakdown();
    EXPECT_EQ(engine.breakdown().total(), 0.0);
}

TEST(ColumnEngine, DynamicAndStaticSchedulesAreBitIdentical)
{
    // The group decomposition (and thus every partial accumulation
    // and the merge order) is a pure function of the config, so the
    // scheduling policy must not change a single output bit.
    const size_t ns = 2048, ed = 24, nq = 3;
    const KnowledgeBase kb = randomKb(ns, ed, 61);
    const auto u = randomBatch(nq, ed, 62);

    for (bool online : {false, true}) {
        EngineConfig cfg;
        cfg.chunkSize = 100;
        cfg.threads = 3;
        cfg.scheduleGroups = 8;
        cfg.streaming = true;
        cfg.skipThreshold = 0.05f;
        cfg.onlineNormalize = online;

        cfg.schedule = Schedule::Dynamic;
        std::vector<float> o_dyn(nq * ed);
        ColumnEngine(kb, cfg).inferBatch(u.data(), nq, o_dyn.data());

        cfg.schedule = Schedule::Static;
        std::vector<float> o_sta(nq * ed);
        ColumnEngine(kb, cfg).inferBatch(u.data(), nq, o_sta.data());

        for (size_t i = 0; i < o_dyn.size(); ++i)
            ASSERT_EQ(o_dyn[i], o_sta[i])
                << "online=" << online << " index " << i;
    }
}

TEST(ColumnEngine, ScheduleCountersMatchAcrossPolicies)
{
    const size_t ns = 3000, ed = 16, nq = 2;
    const KnowledgeBase kb = randomKb(ns, ed, 63);
    const auto u = randomBatch(nq, ed, 64);
    std::vector<float> o(nq * ed);

    uint64_t kept[2], skipped[2];
    const Schedule policies[] = {Schedule::Dynamic, Schedule::Static};
    for (int i = 0; i < 2; ++i) {
        EngineConfig cfg;
        cfg.chunkSize = 128;
        cfg.threads = 2;
        cfg.scheduleGroups = 6;
        cfg.skipThreshold = 0.1f;
        cfg.schedule = policies[i];
        ColumnEngine engine(kb, cfg);
        engine.inferBatch(u.data(), nq, o.data());
        kept[i] = engine.counters().value("rows_kept");
        skipped[i] = engine.counters().value("rows_skipped");
    }
    EXPECT_EQ(kept[0], kept[1]);
    EXPECT_EQ(skipped[0], skipped[1]);
    EXPECT_EQ(kept[0] + skipped[0], uint64_t(nq) * ns);
}

TEST(ColumnEngine, ObserverSeesEveryChunkOnce)
{
    const size_t ns = 1050, ed = 8, nq = 1;
    const KnowledgeBase kb = randomKb(ns, ed, 65);
    const auto u = randomBatch(nq, ed, 66);
    std::vector<float> o(nq * ed);

    EngineConfig cfg;
    cfg.chunkSize = 100; // 11 chunks, last one short
    cfg.threads = 2;
    std::mutex mu;
    std::vector<int> seen(11, 0);
    cfg.chunkObserver = [&](size_t worker, size_t chunk) {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_LT(chunk, seen.size());
        ASSERT_LT(worker, 2u);
        ++seen[chunk];
    };
    ColumnEngine(kb, cfg).inferBatch(u.data(), nq, o.data());
    for (size_t c = 0; c < seen.size(); ++c)
        EXPECT_EQ(seen[c], 1) << "chunk " << c;
}

TEST(ColumnEngine, DynamicSchedulingBalancesStalledWorkers)
{
    // Engine-level load-balance check under zero-skipping. The
    // observer sleeps per chunk, making chunk cost blocking-bound:
    // that is what lets a single-core host rotate workers (a
    // compute-bound body would let one worker drain the cursor within
    // its scheduler quantum, saying nothing about the scheduler).
    constexpr size_t kWorkers = 4;
    const size_t ns = 6400, ed = 8, nq = 1; // 64 chunks of 100
    const KnowledgeBase kb = randomKb(ns, ed, 67);
    const auto u = randomBatch(nq, ed, 68);
    std::vector<float> o(nq * ed);

    for (int attempt = 0; attempt < 4; ++attempt) {
        EngineConfig cfg;
        cfg.chunkSize = 100;
        cfg.threads = kWorkers;
        cfg.scheduleGroups = 64; // one chunk per group: max slack
        cfg.skipThreshold = 0.1f;
        cfg.schedule = Schedule::Dynamic;
        std::vector<std::atomic<size_t>> per_worker(kWorkers);
        for (auto &c : per_worker)
            c.store(0);
        cfg.chunkObserver = [&](size_t worker, size_t) {
            per_worker[worker].fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        };
        ColumnEngine(kb, cfg).inferBatch(u.data(), nq, o.data());

        size_t min_c = ns, max_c = 0, total = 0;
        for (const auto &c : per_worker) {
            min_c = std::min(min_c, c.load());
            max_c = std::max(max_c, c.load());
            total += c.load();
        }
        ASSERT_EQ(total, 64u);
        if (min_c > 0 && max_c <= min_c + (min_c + 3) / 4)
            return; // max within 25% of min: balanced
    }
    FAIL() << "dynamic chunk scheduling never balanced the workers";
}

TEST(ColumnEngine, BatchSizeSweepMatchesBaseline)
{
    // The query-blocked dataflow must agree with the baseline at
    // every batch size that exercises a different register-tile
    // shape: odd/even nq, nq crossing the 2-query tile, and nq
    // crossing the kWsumQueryTile dispatch split (16), under every
    // schedule x zero-skip x online-normalize combination.
    const size_t ns = 600, ed = 32, max_nq = 17;
    const KnowledgeBase kb = randomKb(ns, ed, 81);
    const auto u = randomBatch(max_nq, ed, 82);

    for (size_t nq = 1; nq <= max_nq; ++nq) {
        EngineConfig base_cfg;
        BaselineEngine baseline(kb, base_cfg);
        std::vector<float> o_base(nq * ed);
        baseline.inferBatch(u.data(), nq, o_base.data());

        for (Schedule sched : {Schedule::Static, Schedule::Dynamic}) {
            for (bool zskip : {false, true}) {
                for (bool online : {false, true}) {
                    EngineConfig cfg;
                    cfg.chunkSize = 64;
                    cfg.threads = 2;
                    cfg.schedule = sched;
                    cfg.skipThreshold = zskip ? 1e-5f : 0.f;
                    cfg.onlineNormalize = online;
                    ColumnEngine column(kb, cfg);
                    std::vector<float> o_col(nq * ed);
                    column.inferBatch(u.data(), nq, o_col.data());
                    // Zero-skipping drops at most ns * th of the
                    // probability mass; exact paths agree to float
                    // accumulation tolerance.
                    const double tol = zskip ? 5e-2 : 1e-4;
                    for (size_t i = 0; i < o_col.size(); ++i)
                        ASSERT_NEAR(o_base[i], o_col[i], tol)
                            << "nq=" << nq << " sched=" << int(sched)
                            << " zskip=" << zskip
                            << " online=" << online << " index " << i;
                }
            }
        }
    }
}

TEST(ColumnEngine, RepeatedCallsAreBitIdenticalAcrossArenaReuse)
{
    // The scratch arenas persist across inferBatch calls (and get
    // rewound, grown, and coalesced as the batch size moves around);
    // none of that lifecycle may leak into results: the same inputs
    // must produce the same output bits on every call.
    const size_t ns = 1500, ed = 24, nq = 5;
    const KnowledgeBase kb = randomKb(ns, ed, 83);
    const auto u = randomBatch(nq, ed, 84);

    EngineConfig cfg;
    cfg.chunkSize = 128;
    cfg.threads = 2;
    cfg.streaming = true;
    cfg.skipThreshold = 0.01f;
    ColumnEngine engine(kb, cfg);

    std::vector<float> first(nq * ed), again(nq * ed);
    engine.inferBatch(u.data(), nq, first.data());

    // Interleave other batch sizes so the arenas are exercised at
    // several claim layouts, including growth past the first call.
    std::vector<float> other(2 * nq * ed);
    const auto u2 = randomBatch(2 * nq, ed, 85);
    for (size_t n : {1ul, 2 * nq, 3ul}) {
        engine.inferBatch(u2.data(), n, other.data());
    }

    for (int call = 0; call < 3; ++call) {
        engine.inferBatch(u.data(), nq, again.data());
        for (size_t i = 0; i < first.size(); ++i)
            ASSERT_EQ(first[i], again[i])
                << "call " << call << " index " << i;
    }
}

TEST(KnowledgeBase, GrowsAndPreservesRows)
{
    KnowledgeBase kb(4);
    std::vector<float> a = {1, 2, 3, 4}, b = {5, 6, 7, 8};
    for (int i = 0; i < 100; ++i) {
        kb.addSentence(a.data(), b.data());
        a[0] += 1.f;
    }
    EXPECT_EQ(kb.size(), 100u);
    EXPECT_FLOAT_EQ(kb.minRow(0)[0], 1.f);
    EXPECT_FLOAT_EQ(kb.minRow(99)[0], 100.f);
    EXPECT_FLOAT_EQ(kb.moutRow(50)[3], 8.f);
    kb.clear();
    EXPECT_EQ(kb.size(), 0u);
}

TEST(KnowledgeBase, RowOutOfRangePanics)
{
    KnowledgeBase kb(4);
    EXPECT_DEATH(kb.minRow(0), "out of range");
}

TEST(KnowledgeBaseBf16, BytesReflectElementSize)
{
    const size_t ns = 64, ed = 48;
    const KnowledgeBase f32 = randomKb(ns, ed, 91);
    const KnowledgeBase b16 =
        randomKb(ns, ed, 91, 0.5f, Precision::BF16);
    EXPECT_EQ(f32.bytes(), 2 * ns * ed * sizeof(float));
    EXPECT_EQ(b16.bytes(), 2 * ns * ed * sizeof(uint16_t));
    EXPECT_EQ(b16.bytes() * 2, f32.bytes());
    EXPECT_EQ(f32.elemBytes(), sizeof(float));
    EXPECT_EQ(b16.elemBytes(), sizeof(uint16_t));
    EXPECT_STREQ(precisionName(f32.precision()), "f32");
    EXPECT_STREQ(precisionName(b16.precision()), "bf16");
}

TEST(KnowledgeBaseBf16, RowsAreRoundedStorageOfInputs)
{
    // Stored rows must be exactly the round-to-nearest-even bf16 of
    // the added fp32 values, surviving buffer growth.
    const size_t ed = 5;
    KnowledgeBase kb(ed, Precision::BF16);
    XorShiftRng rng(93);
    std::vector<float> min_row(ed), mout_row(ed);
    std::vector<float> all_min, all_mout;
    for (size_t i = 0; i < 100; ++i) { // forces several grows
        for (size_t e = 0; e < ed; ++e) {
            min_row[e] = rng.uniformRange(-2.f, 2.f);
            mout_row[e] = rng.uniformRange(-2.f, 2.f);
        }
        all_min.insert(all_min.end(), min_row.begin(), min_row.end());
        all_mout.insert(all_mout.end(), mout_row.begin(),
                        mout_row.end());
        kb.addSentence(min_row.data(), mout_row.data());
    }
    for (size_t i = 0; i < kb.size(); ++i) {
        for (size_t e = 0; e < ed; ++e) {
            ASSERT_EQ(kb.minRow16(i)[e],
                      bf16FromFloat(all_min[i * ed + e]))
                << "row " << i << " elem " << e;
            ASSERT_EQ(kb.moutRow16(i)[e],
                      bf16FromFloat(all_mout[i * ed + e]))
                << "row " << i << " elem " << e;
        }
    }
}

TEST(KnowledgeBaseBf16, WrongPrecisionAccessorPanics)
{
    KnowledgeBase b16 = randomKb(4, 4, 95, 0.5f, Precision::BF16);
    KnowledgeBase f32 = randomKb(4, 4, 95);
    EXPECT_DEATH(b16.minRow(0), "non-F32");
    EXPECT_DEATH(b16.moutData(), "non-F32");
    EXPECT_DEATH(f32.minRow16(0), "non-BF16");
    EXPECT_DEATH(f32.moutData16(), "non-BF16");
}

TEST(Bf16Engines, ColumnMatchesBaselineOnSameStorage)
{
    // Both engines read the identical bf16 rows, so they only differ
    // in accumulation order — the same tolerance as the fp32
    // column-vs-baseline equivalence applies.
    const size_t ns = 3000, ed = 24, nq = 4;
    const KnowledgeBase kb =
        randomKb(ns, ed, 31, 0.5f, Precision::BF16);
    const auto u = randomBatch(nq, ed, 32);

    EngineConfig cfg;
    BaselineEngine baseline(kb, cfg);
    ColumnEngine column(kb, cfg);
    std::vector<float> ob(nq * ed), oc(nq * ed);
    baseline.inferBatch(u.data(), nq, ob.data());
    column.inferBatch(u.data(), nq, oc.data());
    expectClose(ob, oc);
}

TEST(Bf16Engines, OutputStaysCloseToF32Engine)
{
    // End-to-end deviation bound: rounding every KB element to bf16
    // perturbs each dot by O(|u| |m| ed 2^-8) and each output element
    // by O(scale 2^-8) plus the softmax reweighting. For this
    // geometry the empirical deviation is ~5e-3; 0.02 gives margin
    // while still catching a broken kernel (which is off by O(1)).
    const size_t ns = 4000, ed = 32, nq = 5;
    const KnowledgeBase f32 = randomKb(ns, ed, 33, 0.3f);
    const KnowledgeBase b16 =
        randomKb(ns, ed, 33, 0.3f, Precision::BF16);
    const auto u = randomBatch(nq, ed, 34);

    for (float threshold : {0.0f, 1e-3f}) {
        EngineConfig cfg;
        cfg.skipThreshold = threshold;
        ColumnEngine ef(f32, cfg);
        ColumnEngine eb(b16, cfg);
        std::vector<float> of(nq * ed), ob(nq * ed);
        ef.inferBatch(u.data(), nq, of.data());
        eb.inferBatch(u.data(), nq, ob.data());
        for (size_t i = 0; i < of.size(); ++i)
            ASSERT_NEAR(of[i], ob[i], 0.02)
                << "th=" << threshold << " i=" << i;
    }
}

TEST(Bf16Engines, RepeatedCallsAreBitIdentical)
{
    // Arena reuse and scheduling must stay result-neutral in bf16
    // mode exactly as in fp32 mode.
    const size_t ns = 5000, ed = 16, nq = 3;
    EngineConfig cfg;
    cfg.chunkSize = 512;
    cfg.skipThreshold = 0.05f;
    const KnowledgeBase kb =
        randomKb(ns, ed, 35, 0.5f, Precision::BF16);
    const auto u = randomBatch(nq, ed, 36);

    ColumnEngine engine(kb, cfg);
    std::vector<float> first(nq * ed), again(nq * ed);
    engine.inferBatch(u.data(), nq, first.data());
    for (int rep = 0; rep < 3; ++rep) {
        engine.inferBatch(u.data(), nq, again.data());
        for (size_t i = 0; i < first.size(); ++i)
            ASSERT_EQ(first[i], again[i]) << "rep=" << rep;
    }
}

// ---------------------------------------------------------------------
// int8 knowledge bases: per-chunk affine quantization at append time,
// precision-guarded accessors, and engine equivalence. See DESIGN.md
// §10 for the storage format.
// ---------------------------------------------------------------------

TEST(KnowledgeBaseI8, BytesReflectElementSize)
{
    const size_t ns = 64, ed = 48;
    const KnowledgeBase f32 = randomKb(ns, ed, 91);
    const KnowledgeBase i8 = randomKb(ns, ed, 91, 0.5f, Precision::I8);
    EXPECT_EQ(i8.bytes(), 2 * ns * ed * sizeof(int8_t));
    EXPECT_EQ(i8.bytes() * 4, f32.bytes());
    EXPECT_EQ(i8.elemBytes(), sizeof(int8_t));
    EXPECT_STREQ(precisionName(i8.precision()), "i8");
    EXPECT_EQ(precisionBytes(Precision::I8), sizeof(int8_t));
}

TEST(KnowledgeBaseI8, StorageMatchesBatchQuantization)
{
    // Rows are quantized at append time with tail-chunk requantization
    // when the running range grows, so the stored bytes must equal
    // quantizing each full chunk against its final [lo, hi] — for
    // M_IN and M_OUT independently. Small qchunk forces several
    // chunks including a partial tail.
    const size_t ed = 7, ns = 29, qchunk = 8;
    KnowledgeBase kb(ed, Precision::I8, qchunk);
    XorShiftRng rng(141);
    std::vector<float> all_min, all_mout, min_row(ed), mout_row(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            min_row[e] = rng.uniformRange(-2.f, 3.f);
            mout_row[e] = rng.uniformRange(-1.f, 0.5f);
        }
        all_min.insert(all_min.end(), min_row.begin(), min_row.end());
        all_mout.insert(all_mout.end(), mout_row.begin(),
                        mout_row.end());
        kb.addSentence(min_row.data(), mout_row.data());
    }
    EXPECT_EQ(kb.i8ChunkRows(), qchunk);

    auto check = [&](const std::vector<float> &src,
                     auto rowAccessor, auto scaleAt, auto zeroAt) {
        for (size_t c0 = 0; c0 < ns; c0 += qchunk) {
            const size_t c1 = std::min(c0 + qchunk, ns);
            float lo = src[c0 * ed], hi = src[c0 * ed];
            for (size_t i = c0 * ed; i < c1 * ed; ++i) {
                lo = std::min(lo, src[i]);
                hi = std::max(hi, src[i]);
            }
            const float scale = (hi - lo) / 255.f;
            const float zero = lo + 128.f * scale;
            ASSERT_FLOAT_EQ(scaleAt(c0), scale) << "chunk@" << c0;
            ASSERT_FLOAT_EQ(zeroAt(c0), zero) << "chunk@" << c0;
            for (size_t i = c0; i < c1; ++i) {
                for (size_t e = 0; e < ed; ++e) {
                    const float x = src[i * ed + e];
                    long q = std::lrintf((x - zero) * (1.f / scale));
                    q = std::min(127l, std::max(-128l, q));
                    ASSERT_EQ(long(rowAccessor(i)[e]), q)
                        << "row " << i << " elem " << e;
                    // The documented error bound of the format.
                    const float back = scale * float(q) + zero;
                    ASSERT_LE(std::abs(back - x),
                              scale / 2 + 1e-6f)
                        << "row " << i << " elem " << e;
                }
            }
        }
    };
    check(all_min, [&](size_t i) { return kb.minRow8(i); },
          [&](size_t i) { return kb.minScale(i); },
          [&](size_t i) { return kb.minZero(i); });
    check(all_mout, [&](size_t i) { return kb.moutRow8(i); },
          [&](size_t i) { return kb.moutScale(i); },
          [&](size_t i) { return kb.moutZero(i); });
}

TEST(KnowledgeBaseI8, WrongPrecisionAccessorPanics)
{
    KnowledgeBase i8 = randomKb(4, 4, 95, 0.5f, Precision::I8);
    KnowledgeBase f32 = randomKb(4, 4, 95);
    KnowledgeBase b16 = randomKb(4, 4, 95, 0.5f, Precision::BF16);
    EXPECT_DEATH(i8.minRow(0), "non-F32");
    EXPECT_DEATH(i8.moutData(), "non-F32");
    EXPECT_DEATH(i8.minRow16(0), "non-BF16");
    EXPECT_DEATH(f32.minRow8(0), "non-I8");
    EXPECT_DEATH(f32.moutData8(), "non-I8");
    EXPECT_DEATH(f32.minScale(0), "non-I8");
    EXPECT_DEATH(b16.minData8(), "non-I8");
    EXPECT_DEATH(b16.moutZero(0), "non-I8");
    EXPECT_DEATH(b16.i8GroupEnd(0), "non-I8");
}

TEST(KnowledgeBaseI8, ViewsResolveParentScalesAndGroups)
{
    // A view at an arbitrary row offset must hand back the parent's
    // quantization parameters for its rows, and i8GroupEnd must cut
    // at the parent's chunk boundaries shifted by the view offset.
    const size_t ed = 4, ns = 40, qchunk = 8;
    const KnowledgeBase kb =
        randomKb(ns, ed, 143, 0.5f, Precision::I8, qchunk);
    const KnowledgeBase v = kb.view(5, 25);
    ASSERT_EQ(v.size(), 20u);
    for (size_t i = 0; i < v.size(); ++i) {
        ASSERT_FLOAT_EQ(v.minScale(i), kb.minScale(5 + i)) << i;
        ASSERT_FLOAT_EQ(v.minZero(i), kb.minZero(5 + i)) << i;
        ASSERT_FLOAT_EQ(v.moutScale(i), kb.moutScale(5 + i)) << i;
        for (size_t e = 0; e < ed; ++e)
            ASSERT_EQ(v.minRow8(i)[e], kb.minRow8(5 + i)[e]) << i;
    }
    // Parent chunks end at rows 8, 16, 24, ... → view rows 3, 11, 19.
    EXPECT_EQ(v.i8GroupEnd(0), 3u);
    EXPECT_EQ(v.i8GroupEnd(2), 3u);
    EXPECT_EQ(v.i8GroupEnd(3), 11u);
    EXPECT_EQ(v.i8GroupEnd(12), 19u);
    EXPECT_EQ(v.i8GroupEnd(19), 20u); // clamped to the view size
}

TEST(I8Engines, ColumnMatchesBaselineOnSameStorage)
{
    // Both engines read the identical int8 rows and scales, so they
    // only differ in accumulation order — the same tolerance as the
    // fp32 column-vs-baseline equivalence applies.
    const size_t ns = 3000, ed = 24, nq = 4;
    const KnowledgeBase kb = randomKb(ns, ed, 41, 0.5f, Precision::I8);
    const auto u = randomBatch(nq, ed, 42);

    EngineConfig cfg;
    BaselineEngine baseline(kb, cfg);
    ColumnEngine column(kb, cfg);
    std::vector<float> ob(nq * ed), oc(nq * ed);
    baseline.inferBatch(u.data(), nq, ob.data());
    column.inferBatch(u.data(), nq, oc.data());
    expectClose(ob, oc);
}

TEST(I8Engines, OutputStaysCloseToF32Engine)
{
    // End-to-end deviation bound: per-chunk affine quantization
    // perturbs each element by at most scale/2 (see DESIGN.md §10),
    // each dot by O(|u| ed scale/2), and each output element by the
    // softmax reweighting of that logit shift. Same 0.02 envelope as
    // the bf16 engine test at this geometry.
    const size_t ns = 4000, ed = 32, nq = 5;
    const KnowledgeBase f32 = randomKb(ns, ed, 43, 0.3f);
    const KnowledgeBase i8 =
        randomKb(ns, ed, 43, 0.3f, Precision::I8);
    const auto u = randomBatch(nq, ed, 44);

    for (float threshold : {0.0f, 1e-3f}) {
        EngineConfig cfg;
        cfg.skipThreshold = threshold;
        ColumnEngine ef(f32, cfg);
        ColumnEngine ei(i8, cfg);
        std::vector<float> of(nq * ed), oi(nq * ed);
        ef.inferBatch(u.data(), nq, of.data());
        ei.inferBatch(u.data(), nq, oi.data());
        for (size_t i = 0; i < of.size(); ++i)
            ASSERT_NEAR(of[i], oi[i], 0.02)
                << "th=" << threshold << " i=" << i;
    }
}

TEST(I8Engines, RepeatedCallsAreBitIdentical)
{
    const size_t ns = 5000, ed = 16, nq = 3;
    EngineConfig cfg;
    cfg.chunkSize = 512;
    cfg.skipThreshold = 0.05f;
    const KnowledgeBase kb = randomKb(ns, ed, 45, 0.5f, Precision::I8);
    const auto u = randomBatch(nq, ed, 46);

    ColumnEngine engine(kb, cfg);
    std::vector<float> first(nq * ed), again(nq * ed);
    engine.inferBatch(u.data(), nq, first.data());
    for (int rep = 0; rep < 3; ++rep) {
        engine.inferBatch(u.data(), nq, again.data());
        for (size_t i = 0; i < first.size(); ++i)
            ASSERT_EQ(first[i], again[i]) << "rep=" << rep;
    }
}

TEST(I8Engines, ChunkSizeCrossingQuantGroupsIsBitInvariant)
{
    // Engine chunk/group boundaries land anywhere relative to the
    // quantization chunks; the sweep splitter must make the result
    // independent of that alignment. Everything here is the same
    // arithmetic in a different call decomposition, so the outputs
    // must match bit-for-bit, not just approximately.
    const size_t ns = 1000, ed = 12, nq = 4, qchunk = 96;
    const KnowledgeBase kb =
        randomKb(ns, ed, 47, 0.5f, Precision::I8, qchunk);
    const auto u = randomBatch(nq, ed, 48);

    std::vector<float> ref(nq * ed);
    {
        EngineConfig cfg;
        cfg.chunkSize = ns; // one chunk spanning every quant group
        ColumnEngine(kb, cfg).inferBatch(u.data(), nq, ref.data());
    }
    for (size_t chunk : {size_t(64), size_t(96), size_t(100),
                         size_t(97), size_t(3)}) {
        EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.scheduleGroups = 1; // isolate chunking from group merge
        ColumnEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i)
            ASSERT_EQ(o[i], ref[i]) << "chunk=" << chunk << " i=" << i;
    }
}

// ---------------------------------------------------------------------
// Kernel-plan (autotuner) invariance: every (stripRows, prefetchStride)
// candidate the tuner can pick must yield bit-identical engine output.
// ---------------------------------------------------------------------

TEST(TunedPlans, EngineOutputBitIdenticalAcrossPlanVariants)
{
    // Sweep nq across register-tile and dispatch-split boundaries
    // (1..17), both schedules, and zero-skipping, comparing every
    // plan variant against the tuned default — per storage precision.
    const size_t ns = 600, ed = 32, max_nq = 17;
    const auto u = randomBatch(max_nq, ed, 61);

    struct Variant
    {
        size_t strip;
        int prefetch;
    };
    const Variant variants[] = {{4, 0}, {8, 4}, {32, 0}, {64, 2}};

    for (Precision prec :
         {Precision::F32, Precision::BF16, Precision::I8}) {
        const KnowledgeBase kb = randomKb(ns, ed, 62, 0.5f, prec);
        for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(7),
                          size_t(8), size_t(15), size_t(16),
                          size_t(17)}) {
            for (Schedule sched : {Schedule::Static, Schedule::Dynamic}) {
                for (bool zskip : {false, true}) {
                    EngineConfig cfg;
                    cfg.chunkSize = 64;
                    cfg.threads = 2;
                    cfg.schedule = sched;
                    cfg.skipThreshold = zskip ? 1e-4f : 0.f;
                    std::vector<float> ref(nq * ed);
                    ColumnEngine(kb, cfg).inferBatch(u.data(), nq,
                                                     ref.data());
                    for (const Variant &v : variants) {
                        EngineConfig vcfg = cfg;
                        vcfg.stripRows = v.strip;
                        vcfg.prefetchStride = v.prefetch;
                        std::vector<float> o(nq * ed);
                        ColumnEngine(kb, vcfg).inferBatch(u.data(), nq,
                                                          o.data());
                        for (size_t i = 0; i < o.size(); ++i)
                            ASSERT_EQ(o[i], ref[i])
                                << precisionName(prec) << " nq=" << nq
                                << " sched=" << int(sched)
                                << " zskip=" << zskip
                                << " strip=" << v.strip
                                << " pf=" << v.prefetch << " i=" << i;
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace mnnfast::core
