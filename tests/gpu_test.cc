/**
 * @file
 * Tests for the GPU analytic models: roofline kernel timing, PCIe bus
 * serialization, CUDA-stream overlap, and multi-GPU contention —
 * the machinery behind paper Fig. 12.
 */

#include <gtest/gtest.h>

#include "gpu/device_model.hh"
#include "gpu/pcie_bus.hh"
#include "gpu/stream_sim.hh"

namespace mnnfast::gpu {
namespace {

TEST(DeviceModel, ComputeBoundKernel)
{
    GpuConfig cfg;
    cfg.peakFlops = 1e12;
    cfg.computeEfficiency = 1.0;
    cfg.memBandwidth = 1e12;
    cfg.memEfficiency = 1.0;
    cfg.launchOverhead = 0.0;
    GpuDeviceModel dev(cfg);
    // 1e9 flops, negligible bytes -> 1 ms.
    EXPECT_NEAR(dev.kernelSeconds({1e9, 1.0}), 1e-3, 1e-9);
}

TEST(DeviceModel, MemoryBoundKernel)
{
    GpuConfig cfg;
    cfg.peakFlops = 1e15;
    cfg.computeEfficiency = 1.0;
    cfg.memBandwidth = 1e9;
    cfg.memEfficiency = 1.0;
    cfg.launchOverhead = 0.0;
    GpuDeviceModel dev(cfg);
    // 1e6 bytes at 1 GB/s -> 1 ms.
    EXPECT_NEAR(dev.kernelSeconds({1.0, 1e6}), 1e-3, 1e-9);
}

TEST(DeviceModel, LaunchOverheadAdds)
{
    GpuConfig cfg;
    cfg.launchOverhead = 7e-6;
    GpuDeviceModel dev(cfg);
    EXPECT_GE(dev.kernelSeconds({0.0, 0.0}), 7e-6);
}

TEST(PcieBus, TransfersSerialize)
{
    PcieConfig cfg;
    cfg.bandwidth = 1e9;
    cfg.setupLatency = 0.0;
    PcieBus bus(cfg);
    const double t1 = bus.transfer(0.0, 1e6); // 1 ms
    const double t2 = bus.transfer(0.0, 1e6); // queued behind t1
    EXPECT_NEAR(t1, 1e-3, 1e-9);
    EXPECT_NEAR(t2, 2e-3, 1e-9);
    EXPECT_EQ(bus.transfers(), 2u);
    EXPECT_DOUBLE_EQ(bus.totalBytes(), 2e6);
}

TEST(PcieBus, LateRequestStartsLate)
{
    PcieConfig cfg;
    cfg.bandwidth = 1e9;
    cfg.setupLatency = 0.0;
    PcieBus bus(cfg);
    const double done = bus.transfer(5.0, 1e6);
    EXPECT_NEAR(done, 5.001, 1e-9);
}

TEST(PcieBus, ResetClearsState)
{
    PcieBus bus(PcieConfig{});
    bus.transfer(0.0, 1e6);
    bus.reset();
    EXPECT_DOUBLE_EQ(bus.busyUntil(), 0.0);
    EXPECT_EQ(bus.transfers(), 0u);
}

GpuWorkload
testWorkload()
{
    GpuWorkload wl;
    wl.ns = 8'000'000;
    wl.ed = 64;
    wl.nq = 128;
    wl.chunkSize = 500'000;
    return wl;
}

TEST(StreamSim, ChunkBytesAndKernels)
{
    const GpuWorkload wl = testWorkload();
    EXPECT_DOUBLE_EQ(wl.chunkBytes(), 2.0 * 500'000 * 64 * 4);
    const auto kernels = wl.chunkKernels();
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_GT(kernels[0].flops, 0.0);
    EXPECT_GT(kernels[1].flops, 0.0);
    EXPECT_GT(kernels[2].flops, 0.0);
}

TEST(StreamSim, TwoStreamsBeatOneStream)
{
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const GpuWorkload wl = testWorkload();
    const double one = sim.runSingleGpu(wl, 1).makespan;
    const double two = sim.runSingleGpu(wl, 2).makespan;
    // Overlap of copy and kernel must help (paper: 1.33x).
    EXPECT_LT(two, one * 0.95);
}

TEST(StreamSim, ManyStreamsPlateau)
{
    // memcpy is the critical path: going from 2 to 8 streams barely
    // helps (paper Fig. 12a).
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const GpuWorkload wl = testWorkload();
    const double two = sim.runSingleGpu(wl, 2).makespan;
    const double eight = sim.runSingleGpu(wl, 8).makespan;
    EXPECT_GT(eight, two * 0.9);
}

TEST(StreamSim, MakespanBoundedBelowByCopyTime)
{
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const GpuWorkload wl = testWorkload();
    const auto r = sim.runSingleGpu(wl, 4);
    const size_t chunks = (wl.ns + wl.chunkSize - 1) / wl.chunkSize;
    const double copy_floor =
        double(chunks) * wl.chunkBytes() / PcieConfig{}.bandwidth;
    EXPECT_GE(r.makespan, copy_floor);
}

TEST(StreamSim, MultiGpuScalesUntilBusContention)
{
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const GpuWorkload wl = testWorkload();
    const double one = sim.runMultiGpu(wl, 1, 2, true).makespan;
    const double two = sim.runMultiGpu(wl, 2, 2, true).makespan;
    const double four = sim.runMultiGpu(wl, 4, 2, true).makespan;
    EXPECT_LT(two, one);
    EXPECT_LT(four, two);
}

TEST(StreamSim, IdealBusIsNeverSlower)
{
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const GpuWorkload wl = testWorkload();
    for (size_t g : {1ul, 2ul, 4ul}) {
        const double worst = sim.runMultiGpu(wl, g, 2, true).makespan;
        const double ideal = sim.runMultiGpu(wl, g, 2, false).makespan;
        EXPECT_LE(ideal, worst * 1.0001) << g << " GPUs";
    }
}

TEST(StreamSim, ContentionGapGrowsWithGpuCount)
{
    // Paper Fig. 12b: the H2D difference between worst and ideal
    // grows as GPUs are added.
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const GpuWorkload wl = testWorkload();
    auto gap = [&](size_t g) {
        const auto worst = sim.runMultiGpu(wl, g, 2, true);
        const auto ideal = sim.runMultiGpu(wl, g, 2, false);
        double w = 0, i = 0;
        for (const auto &lat : worst.perGpu)
            w = std::max(w, lat.h2dSeconds);
        for (const auto &lat : ideal.perGpu)
            i = std::max(i, lat.h2dSeconds);
        return w - i;
    };
    EXPECT_GT(gap(4), gap(2));
    EXPECT_GE(gap(2), gap(1) - 1e-12);
}

TEST(StreamSim, PerGpuLatenciesAreReported)
{
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    const auto r = sim.runMultiGpu(testWorkload(), 4, 2, true);
    ASSERT_EQ(r.perGpu.size(), 4u);
    for (const auto &lat : r.perGpu) {
        EXPECT_GT(lat.h2dSeconds, 0.0);
        EXPECT_GT(lat.kernelSeconds, 0.0);
        EXPECT_GE(lat.doneAt, lat.h2dSeconds);
        EXPECT_LE(lat.doneAt, r.makespan);
    }
}

TEST(StreamSim, WorkPartitionCoversAllSentences)
{
    // 3 GPUs over a non-divisible sentence count: kernels must cover
    // all chunks (sum of per-GPU kernel time ~ single-GPU total).
    CudaStreamSim sim(GpuConfig{}, PcieConfig{});
    GpuWorkload wl = testWorkload();
    wl.ns = 7'000'001;
    const auto single = sim.runSingleGpu(wl, 1);
    const auto multi = sim.runMultiGpu(wl, 3, 1, false);
    double total = 0;
    for (const auto &lat : multi.perGpu)
        total += lat.kernelSeconds;
    EXPECT_NEAR(total, single.perGpu[0].kernelSeconds,
                single.perGpu[0].kernelSeconds * 0.02);
}

} // namespace
} // namespace mnnfast::gpu
