/**
 * @file
 * Tests for coarse-then-fine candidate routing (DESIGN.md §11): the
 * chunkBoundBatch kernel, the ChunkSummaryIndex, the column engine's
 * RoutePolicy selection (including the exactness anchors — k = all
 * chunks and threshold 0 bit-identical to the unrouted engine),
 * composition with sharding and live serving, the trainer-side
 * forwardTopK, the traffic simulator's routed replay, and the
 * engine-config fail-fast validation added alongside.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "blas/kernels.hh"
#include "core/chunk_summary_index.hh"
#include "core/column_engine.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "serve/live_server.hh"
#include "sim/traffic.hh"
#include "train/model.hh"
#include "train/trainer.hh"
#include "util/bf16.hh"
#include "util/rng.hh"

namespace mnnfast::core {
namespace {

KnowledgeBase
randomKb(size_t ns, size_t ed, uint64_t seed, float scale = 0.5f,
         Precision prec = Precision::F32)
{
    KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(seed);
    std::vector<float> min_row(ed), mout_row(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            min_row[e] = rng.uniformRange(-scale, scale);
            mout_row[e] = rng.uniformRange(-scale, scale);
        }
        kb.addSentence(min_row.data(), mout_row.data());
    }
    return kb;
}

std::vector<float>
randomBatch(size_t nq, size_t ed, uint64_t seed, float scale = 0.5f)
{
    XorShiftRng rng(seed);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-scale, scale);
    return u;
}

bool
bitIdentical(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size()
        && std::memcmp(a.data(), b.data(), a.size() * sizeof(float))
               == 0;
}

// ---------------------------------------------------------------------
// The fused bound kernel.
// ---------------------------------------------------------------------

TEST(ChunkBoundKernel, ScalarAndDispatchedAreBitIdentical)
{
    // The dispatched (possibly AVX2) kernel must reproduce the scalar
    // reference bit-for-bit — the canonical-accumulation contract all
    // fused kernels in this codebase share.
    for (size_t ed : {7, 8, 48, 129}) {
        const size_t nx = 5, count = 9;
        XorShiftRng rng(77 + ed);
        std::vector<float> x(nx * ed), lo(count * ed), hi(count * ed);
        for (float &v : x)
            v = rng.uniformRange(-2.f, 2.f);
        for (size_t i = 0; i < count * ed; ++i) {
            const float a = rng.uniformRange(-2.f, 2.f);
            const float b = rng.uniformRange(-2.f, 2.f);
            lo[i] = std::min(a, b);
            hi[i] = std::max(a, b);
        }
        std::vector<float> out_d(nx * count, -1.f);
        std::vector<float> out_s(nx * count, -2.f);
        blas::chunkBoundBatch(x.data(), nx, ed, lo.data(), hi.data(),
                              count, ed, ed, out_d.data(), count);
        blas::scalar::chunkBoundBatch(x.data(), nx, ed, lo.data(),
                                      hi.data(), count, ed, ed,
                                      out_s.data(), count);
        for (size_t i = 0; i < nx * count; ++i)
            ASSERT_EQ(out_d[i], out_s[i]) << "ed " << ed << " i " << i;
    }
}

TEST(ChunkBoundKernel, BoundsEveryInnerProductInTheEnvelope)
{
    // For rows inside [lo, hi] the score must upper-bound x . m. The
    // kernel's sum order differs from a straight dot, so allow
    // rounding-level slack.
    const size_t ed = 48, rows = 64, nx = 8;
    XorShiftRng rng(3);
    std::vector<float> m(rows * ed), lo(ed), hi(ed);
    for (float &v : m)
        v = rng.uniformRange(-1.f, 1.f);
    for (size_t e = 0; e < ed; ++e) {
        lo[e] = m[e];
        hi[e] = m[e];
        for (size_t i = 1; i < rows; ++i) {
            lo[e] = std::min(lo[e], m[i * ed + e]);
            hi[e] = std::max(hi[e], m[i * ed + e]);
        }
    }
    const std::vector<float> x = randomBatch(nx, ed, 4, 1.5f);
    std::vector<float> bound(nx);
    blas::chunkBoundBatch(x.data(), nx, ed, lo.data(), hi.data(), 1, ed,
                          ed, bound.data(), 1);
    for (size_t q = 0; q < nx; ++q) {
        for (size_t i = 0; i < rows; ++i) {
            double dot = 0.0;
            for (size_t e = 0; e < ed; ++e)
                dot += double(x[q * ed + e]) * m[i * ed + e];
            EXPECT_LE(dot, double(bound[q]) + 1e-4)
                << "q " << q << " row " << i;
        }
    }
}

// ---------------------------------------------------------------------
// ChunkSummaryIndex.
// ---------------------------------------------------------------------

TEST(ChunkSummaryIndex, EnvelopeContainsEveryStoredRow)
{
    // For each precision, the envelope must contain the rows *as the
    // kernels stream them* (decoded bf16, dequantized i8) — that
    // containment is what makes the bound valid.
    for (Precision prec :
         {Precision::F32, Precision::BF16, Precision::I8}) {
        const size_t ns = 103, ed = 20, chunk = 16;
        const KnowledgeBase kb = randomKb(ns, ed, 5, 0.5f, prec);
        const ChunkSummaryIndex idx(kb, chunk);
        EXPECT_EQ(idx.chunks(), (ns + chunk - 1) / chunk);
        EXPECT_EQ(idx.rows(), ns);
        EXPECT_EQ(idx.dim(), ed);

        std::vector<float> row(ed);
        for (size_t i = 0; i < ns; ++i) {
            switch (kb.precision()) {
            case Precision::F32:
                std::memcpy(row.data(), kb.minRow(i),
                            ed * sizeof(float));
                break;
            case Precision::BF16:
                for (size_t e = 0; e < ed; ++e)
                    row[e] = bf16ToFloat(kb.minRow16(i)[e]);
                break;
            case Precision::I8:
                for (size_t e = 0; e < ed; ++e)
                    row[e] = kb.minScale(i)
                                 * float(kb.minRow8(i)[e])
                             + kb.minZero(i);
                break;
            }
            const size_t c = i / chunk;
            for (size_t e = 0; e < ed; ++e) {
                EXPECT_LE(idx.lo(c)[e], row[e])
                    << precisionName(prec) << " row " << i;
                EXPECT_GE(idx.hi(c)[e], row[e])
                    << precisionName(prec) << " row " << i;
            }
        }
    }
}

TEST(ChunkSummaryIndex, CentroidIsTheChunkMean)
{
    const size_t ns = 64, ed = 8, chunk = 16;
    const KnowledgeBase kb = randomKb(ns, ed, 6);
    const ChunkSummaryIndex idx(kb, chunk);
    for (size_t c = 0; c < idx.chunks(); ++c) {
        for (size_t e = 0; e < ed; ++e) {
            double mean = 0.0;
            for (size_t i = c * chunk; i < (c + 1) * chunk; ++i)
                mean += kb.minRow(i)[e];
            mean /= chunk;
            EXPECT_NEAR(idx.centroid(c)[e], mean, 1e-5);
        }
    }
}

TEST(ChunkSummaryIndex, ViewIndexEqualsParentSlice)
{
    // An index over a chunk-aligned view must equal the matching
    // slice of the parent's index — the property routed sharding
    // stands on (each shard engine indexes its shard view).
    const size_t ns = 96, ed = 12, chunk = 16;
    const KnowledgeBase kb = randomKb(ns, ed, 7);
    const ChunkSummaryIndex whole(kb, chunk);
    const KnowledgeBase half = kb.view(32, 96);
    const ChunkSummaryIndex sliced(half, chunk);
    ASSERT_EQ(sliced.chunks() + 2, whole.chunks());
    for (size_t c = 0; c < sliced.chunks(); ++c) {
        EXPECT_EQ(std::memcmp(sliced.lo(c), whole.lo(c + 2),
                              ed * sizeof(float)),
                  0);
        EXPECT_EQ(std::memcmp(sliced.hi(c), whole.hi(c + 2),
                              ed * sizeof(float)),
                  0);
    }
}

TEST(ChunkSummaryIndex, RejectsEmptyKbAndZeroChunk)
{
    const KnowledgeBase kb = randomKb(8, 4, 8);
    EXPECT_EXIT(ChunkSummaryIndex(kb, 0),
                ::testing::ExitedWithCode(1), "chunk");
    KnowledgeBase empty(4);
    EXPECT_EXIT(ChunkSummaryIndex(empty, 4),
                ::testing::ExitedWithCode(1), "empty");
}

// ---------------------------------------------------------------------
// Routed engine: exactness anchors and sanity.
// ---------------------------------------------------------------------

TEST(RoutedEngine, KeepAllSelectionsAreBitIdenticalToUnrouted)
{
    // k >= chunk count and threshold 0 must reproduce the unrouted
    // engine bit-for-bit, across precision x threads x zskip x
    // schedule x online-normalize. This is the guarantee that makes
    // routing a pure perf knob at the exact operating point.
    const size_t ns = 640, ed = 24, nq = 5, chunk = 64;
    const std::vector<float> u = randomBatch(nq, ed, 21);
    std::vector<float> ref(nq * ed), out(nq * ed);

    for (Precision prec :
         {Precision::F32, Precision::BF16, Precision::I8}) {
        const KnowledgeBase kb = randomKb(ns, ed, 22, 0.5f, prec);
        for (size_t threads : {size_t{0}, size_t{3}}) {
            for (float zskip : {0.f, 1e-3f}) {
                EngineConfig cfg;
                cfg.chunkSize = chunk;
                cfg.threads = threads;
                cfg.skipThreshold = zskip;
                cfg.streaming = true;
                cfg.onlineNormalize = (threads != 0);
                cfg.schedule = threads ? Schedule::Static
                                       : Schedule::Dynamic;
                ColumnEngine plain(kb, cfg);
                plain.inferBatch(u.data(), nq, ref.data());

                EngineConfig topk = cfg;
                topk.routePolicy = RoutePolicy::TopK;
                topk.routeTopK = ns; // >= every group's chunk count
                ColumnEngine routed_k(kb, topk);
                routed_k.inferBatch(u.data(), nq, out.data());
                EXPECT_TRUE(bitIdentical(ref, out))
                    << precisionName(prec) << " threads " << threads
                    << " zskip " << zskip;

                EngineConfig th = cfg;
                th.routePolicy = RoutePolicy::BoundThreshold;
                th.routeBoundThreshold = 0.f; // ln 0 = -inf: keep all
                ColumnEngine routed_th(kb, th);
                routed_th.inferBatch(u.data(), nq, out.data());
                EXPECT_TRUE(bitIdentical(ref, out))
                    << precisionName(prec) << " threads " << threads
                    << " zskip " << zskip << " (threshold)";
            }
        }
    }
}

TEST(RoutedEngine, RepeatedRoutedCallsAreBitIdentical)
{
    // Arena reuse, the lazily built index, and the compacted
    // sub-batch path must leave no call-to-call state behind.
    const size_t ns = 512, ed = 16, nq = 4;
    const KnowledgeBase kb = randomKb(ns, ed, 23);
    EngineConfig cfg;
    cfg.chunkSize = 64;
    cfg.routePolicy = RoutePolicy::TopK;
    cfg.routeTopK = 3;
    ColumnEngine engine(kb, cfg);
    const std::vector<float> u = randomBatch(nq, ed, 24);
    std::vector<float> first(nq * ed), again(nq * ed);
    engine.inferBatch(u.data(), nq, first.data());
    for (int rep = 0; rep < 3; ++rep) {
        engine.inferBatch(u.data(), nq, again.data());
        EXPECT_TRUE(bitIdentical(first, again)) << "rep " << rep;
    }
}

TEST(RoutedEngine, TopKRecoversConcentratedAttention)
{
    // Plant one hot row the probe strongly matches; background rows
    // are near-orthogonal. Routing to a small k must keep the answer
    // close to exact (the hot chunk's bound dominates) while the
    // counters prove most of the KB was never streamed.
    const size_t ns = 1024, ed = 32, chunk = 64, hot = 700;
    KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(31);
    std::vector<float> probe(ed), a(ed), b(ed);
    for (float &x : probe)
        x = rng.uniformRange(-1.f, 1.f);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.05f, 0.05f)
                 + (i == hot ? 1.5f * probe[e] : 0.f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }

    EngineConfig exact_cfg;
    exact_cfg.chunkSize = chunk;
    ColumnEngine exact(kb, exact_cfg);
    std::vector<float> ref(ed), out(ed);
    exact.inferBatch(probe.data(), 1, ref.data());

    EngineConfig cfg = exact_cfg;
    cfg.routePolicy = RoutePolicy::TopK;
    cfg.routeTopK = 2;
    ColumnEngine routed(kb, cfg);
    routed.inferBatch(probe.data(), 1, out.data());

    double dev = 0.0, scale = 0.0;
    for (size_t e = 0; e < ed; ++e) {
        dev = std::max(dev, std::abs(double(ref[e]) - out[e]));
        scale = std::max(scale, std::abs(double(ref[e])));
    }
    EXPECT_LT(dev, 0.05 * std::max(scale, 1e-6));

    // 2 of 16 chunks streamed; the rest bypassed and counted so.
    EXPECT_EQ(routed.counters().value("rows_routed"), 2 * chunk);
    EXPECT_EQ(routed.counters().value("chunks_bypassed"),
              ns / chunk - 2);
    EXPECT_GT(routed.counters().value("flops_route"), 0u);
    EXPECT_STREQ(routed.name(), "column+routed");
}

TEST(RoutedEngine, BoundThresholdOneKeepsOnlyTopChunks)
{
    // threshold = 1 keeps only chunks tied with the group's best
    // bound — with distinct random scores, exactly one chunk per
    // question.
    const size_t ns = 256, ed = 16, chunk = 32, nq = 3;
    const KnowledgeBase kb = randomKb(ns, ed, 41);
    EngineConfig cfg;
    cfg.chunkSize = chunk;
    cfg.routePolicy = RoutePolicy::BoundThreshold;
    cfg.routeBoundThreshold = 1.f;
    ColumnEngine engine(kb, cfg);
    const std::vector<float> u = randomBatch(nq, ed, 42);
    std::vector<float> out(nq * ed);
    engine.inferBatch(u.data(), nq, out.data());
    EXPECT_EQ(engine.counters().value("rows_routed"), nq * chunk);
}

// ---------------------------------------------------------------------
// Composition: sharding and live serving.
// ---------------------------------------------------------------------

TEST(RoutedSharding, ShardedRoutedMatchesGroupedSingleEngineBitwise)
{
    // A routed ShardedEngine over S shards must answer bit-identically
    // to a routed single engine with scheduleGroups = S: selection is
    // per chunk group, and shard s IS group s (sharded_engine.hh).
    const size_t ns = 768, ed = 20, nq = 4, chunk = 64;
    const std::vector<float> u = randomBatch(nq, ed, 51);
    std::vector<float> ref(nq * ed), out(nq * ed);

    for (Precision prec :
         {Precision::F32, Precision::BF16, Precision::I8}) {
        const KnowledgeBase kb = randomKb(ns, ed, 52, 0.5f, prec);
        for (size_t shards : {size_t{2}, size_t{4}}) {
            EngineConfig cfg;
            cfg.chunkSize = chunk;
            cfg.streaming = true;
            cfg.routePolicy = RoutePolicy::TopK;
            cfg.routeTopK = 2;

            EngineConfig single = cfg;
            single.scheduleGroups = shards;
            ColumnEngine mono(kb, single);
            mono.inferBatch(u.data(), nq, ref.data());

            const ShardedKnowledgeBase skb(kb, chunk, shards);
            EngineConfig scatter = cfg;
            scatter.threads = 2;
            ShardedEngine sharded(skb, scatter);
            sharded.inferBatch(u.data(), nq, out.data());
            EXPECT_TRUE(bitIdentical(ref, out))
                << precisionName(prec) << " shards " << shards;
        }
    }
}

} // namespace
} // namespace mnnfast::core

namespace mnnfast::serve {
namespace {

TEST(LiveServerRouted, RoutedAnswersMatchARoutedReferenceEngine)
{
    // Routing flows through LiveServerConfig::engine; every answer
    // must equal a lone call on an identically-configured engine.
    const size_t ns = 320, ed = 16, n_requests = 12;
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(61);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }

    LiveServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeout = 1e-3;
    cfg.workers = 2;
    cfg.engine.chunkSize = 64;
    cfg.engine.routePolicy = core::RoutePolicy::TopK;
    cfg.engine.routeTopK = 2;
    core::ColumnEngine reference(kb, cfg.engine);

    LiveServer server(kb, cfg);
    std::vector<std::vector<float>> questions(n_requests);
    std::vector<std::future<Answer>> futures;
    for (auto &q : questions) {
        q.resize(ed);
        for (float &x : q)
            x = rng.uniformRange(-1.f, 1.f);
        Ticket t = server.submit(q.data());
        ASSERT_TRUE(t.accepted());
        futures.push_back(std::move(t.answer));
    }
    server.shutdown();

    std::vector<float> expected(ed);
    for (size_t i = 0; i < n_requests; ++i) {
        Answer ans = futures[i].get();
        ASSERT_EQ(ans.o.size(), ed);
        reference.infer(questions[i].data(), expected.data());
        for (size_t e = 0; e < ed; ++e)
            EXPECT_EQ(ans.o[e], expected[e]) << "request " << i;
    }
}

} // namespace
} // namespace mnnfast::serve

// ---------------------------------------------------------------------
// Trainer-side routing.
// ---------------------------------------------------------------------

namespace mnnfast::train {
namespace {

data::Example
makeExample(size_t ns, size_t sentence_len, size_t vocab,
            uint64_t seed)
{
    XorShiftRng rng(seed);
    data::Example ex;
    ex.story.resize(ns);
    for (auto &s : ex.story) {
        s.resize(sentence_len);
        for (auto &w : s)
            w = data::WordId(rng.next() % vocab);
    }
    ex.question.resize(sentence_len);
    for (auto &w : ex.question)
        w = data::WordId(rng.next() % vocab);
    ex.answer = data::WordId(rng.next() % vocab);
    return ex;
}

TEST(ForwardTopK, KeepAllIsBitIdenticalToForward)
{
    ModelConfig mc;
    mc.vocabSize = 40;
    mc.embeddingDim = 16;
    mc.hops = 2;
    mc.maxStory = 24;
    const MemNnModel model(mc, 9);
    const data::Example ex = makeExample(20, 4, mc.vocabSize, 10);

    ForwardState exact, routed;
    model.forward(ex, exact);
    uint64_t kept = 0, total = 0;
    model.forwardTopK(ex, /*chunk_rows=*/4, /*topk_chunks=*/5, routed,
                      kept, total);
    EXPECT_EQ(total, uint64_t(mc.hops) * 20);
    EXPECT_EQ(kept, total); // every chunk selected
    ASSERT_EQ(exact.logits.size(), routed.logits.size());
    for (size_t v = 0; v < exact.logits.size(); ++v)
        ASSERT_EQ(exact.logits[v], routed.logits[v]) << "logit " << v;
    for (size_t h = 0; h < mc.hops; ++h)
        for (size_t i = 0; i < exact.p[h].size(); ++i)
            ASSERT_EQ(exact.p[h][i], routed.p[h][i])
                << "hop " << h << " p " << i;
}

TEST(ForwardTopK, SmallKDropsRowsAndRenormalizesOverKeptSet)
{
    ModelConfig mc;
    mc.vocabSize = 40;
    mc.embeddingDim = 16;
    mc.hops = 1;
    mc.maxStory = 24;
    const MemNnModel model(mc, 11);
    const data::Example ex = makeExample(20, 4, mc.vocabSize, 12);

    ForwardState state;
    uint64_t kept = 0, total = 0;
    model.forwardTopK(ex, /*chunk_rows=*/4, /*topk_chunks=*/2, state,
                      kept, total);
    EXPECT_EQ(total, 20u);
    EXPECT_EQ(kept, 8u); // 2 chunks x 4 rows

    // Exactly the selected rows carry probability, and the kept
    // probabilities form a full softmax over the kept logits.
    size_t nonzero = 0;
    double mass = 0.0;
    for (float p : state.p[0]) {
        if (p > 0.f)
            ++nonzero;
        mass += p;
    }
    EXPECT_LE(nonzero, 8u);
    EXPECT_NEAR(mass, 1.0, 1e-5);
}

TEST(EvaluateAccuracyRouted, LargeKMatchesExactAccuracy)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            71);
    const data::Dataset set = gen.generateSet(40, 12);
    ModelConfig mc;
    mc.vocabSize = vocab.size();
    mc.embeddingDim = 16;
    mc.hops = 1;
    mc.maxStory = 16;
    const MemNnModel model(mc, 72);

    const double exact = evaluateAccuracy(model, set);
    uint64_t kept = 0, total = 0;
    const double routed =
        evaluateAccuracyRouted(model, set, /*chunk_rows=*/4,
                               /*topk_chunks=*/1000, kept, total);
    EXPECT_DOUBLE_EQ(exact, routed);
    EXPECT_EQ(kept, total);
}

} // namespace
} // namespace mnnfast::train

// ---------------------------------------------------------------------
// Traffic simulator: routed replay.
// ---------------------------------------------------------------------

namespace mnnfast::sim {
namespace {

WorkloadParams
routedWorkload()
{
    WorkloadParams wp;
    wp.ns = 8192;
    wp.ed = 16;
    wp.nq = 8;
    wp.chunkSize = 256;
    return wp;
}

CacheConfig
smallLlc()
{
    CacheConfig cfg;
    cfg.sizeBytes = 256 << 10;
    cfg.associativity = 16;
    return cfg;
}

TEST(RoutedTraffic, FractionOneReplaysUnroutedStreamExactly)
{
    // routeChunkFraction = 1 must be byte-identical to the unrouted
    // replay — same phases, same counts — so existing figures never
    // move.
    const auto wp = routedWorkload();
    auto routed = wp;
    routed.routeChunkFraction = 1.0;
    for (Dataflow df : {Dataflow::Column, Dataflow::ColumnStreaming,
                        Dataflow::MnnFast}) {
        const auto base = simulateDataflow(df, wp, smallLlc());
        const auto same = simulateDataflow(df, routed, smallLlc());
        ASSERT_EQ(base.phases.size(), same.phases.size());
        for (size_t i = 0; i < base.phases.size(); ++i) {
            EXPECT_EQ(base.phases[i].name, same.phases[i].name);
            EXPECT_EQ(base.phases[i].accesses, same.phases[i].accesses);
            EXPECT_EQ(base.phases[i].demandMisses,
                      same.phases[i].demandMisses);
            EXPECT_EQ(base.phases[i].prefetchedLines,
                      same.phases[i].prefetchedLines);
            EXPECT_DOUBLE_EQ(base.phases[i].flops,
                             same.phases[i].flops);
        }
        EXPECT_EQ(base.dramLines(), same.dramLines());
    }
}

TEST(RoutedTraffic, PartialFractionCutsTrafficAndAddsScorePhase)
{
    const auto wp = routedWorkload();
    auto routed = wp;
    routed.routeChunkFraction = 0.25;
    const auto base =
        simulateDataflow(Dataflow::ColumnStreaming, wp, smallLlc());
    const auto cut =
        simulateDataflow(Dataflow::ColumnStreaming, routed, smallLlc());

    // The routed replay appends a route_score phase accounting the
    // coarse index reads and score writes.
    ASSERT_EQ(cut.phases.size(), base.phases.size() + 1);
    EXPECT_EQ(cut.phases.back().name, "route_score");
    EXPECT_GT(cut.phases.back().accesses, 0u);
    EXPECT_GT(cut.phases.back().flops, 0.0);

    // Streaming only a quarter of the (question, chunk) pairs must
    // cut compute flops and total DRAM traffic well below the exact
    // replay, even after paying for the index.
    EXPECT_LT(cut.flops(), 0.7 * base.flops());
    EXPECT_LT(cut.dramLines(), base.dramLines());
}

TEST(RoutedTraffic, FractionOutsideUnitIntervalIsFatal)
{
    auto wp = routedWorkload();
    wp.routeChunkFraction = 0.0;
    EXPECT_EXIT(simulateDataflow(Dataflow::Column, wp, smallLlc()),
                ::testing::ExitedWithCode(1), "routeChunkFraction");
    wp.routeChunkFraction = 1.5;
    EXPECT_EXIT(simulateDataflow(Dataflow::Column, wp, smallLlc()),
                ::testing::ExitedWithCode(1), "routeChunkFraction");
}

} // namespace
} // namespace mnnfast::sim

// ---------------------------------------------------------------------
// Fail-fast EngineConfig validation.
// ---------------------------------------------------------------------

namespace mnnfast::core {
namespace {

TEST(EngineConfigValidation, RejectsMisalignedStripRowsPin)
{
    const KnowledgeBase kb = randomKb(64, 8, 81);
    EngineConfig cfg;
    cfg.stripRows = 6; // not a multiple of the 4-row register group
    EXPECT_EXIT(ColumnEngine(kb, cfg), ::testing::ExitedWithCode(1),
                "stripRows");
}

TEST(EngineConfigValidation, RejectsOffGridPrefetchStridePin)
{
    const KnowledgeBase kb = randomKb(64, 8, 82);
    EngineConfig cfg;
    cfg.prefetchStride = 3; // not in kPrefetchStrideCandidates
    EXPECT_EXIT(ColumnEngine(kb, cfg), ::testing::ExitedWithCode(1),
                "prefetchStride");
}

TEST(EngineConfigValidation, AcceptsTunerGridPins)
{
    const KnowledgeBase kb = randomKb(64, 8, 83);
    EngineConfig cfg;
    cfg.stripRows = 8;
    cfg.prefetchStride = 4;
    cfg.streaming = true;
    ColumnEngine engine(kb, cfg);
    std::vector<float> u(8, 0.1f), o(8);
    engine.inferBatch(u.data(), 1, o.data());
}

TEST(EngineConfigValidation, RejectsInvalidRoutingKnobs)
{
    const KnowledgeBase kb = randomKb(64, 8, 84);
    EngineConfig topk;
    topk.routePolicy = RoutePolicy::TopK;
    topk.routeTopK = 0;
    EXPECT_EXIT(ColumnEngine(kb, topk), ::testing::ExitedWithCode(1),
                "routeTopK");

    EngineConfig th;
    th.routePolicy = RoutePolicy::BoundThreshold;
    th.routeBoundThreshold = 1.5f;
    EXPECT_EXIT(ColumnEngine(kb, th), ::testing::ExitedWithCode(1),
                "routeBoundThreshold");
    th.routeBoundThreshold = -0.1f;
    EXPECT_EXIT(ColumnEngine(kb, th), ::testing::ExitedWithCode(1),
                "routeBoundThreshold");
}

TEST(EngineConfigValidation, RoutePolicyNamesAreStable)
{
    EXPECT_STREQ(routePolicyName(RoutePolicy::None), "none");
    EXPECT_STREQ(routePolicyName(RoutePolicy::TopK), "topk");
    EXPECT_STREQ(routePolicyName(RoutePolicy::BoundThreshold),
                 "bound-threshold");
}

} // namespace
} // namespace mnnfast::core
