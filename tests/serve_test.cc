/**
 * @file
 * Tests for the QA-server simulation and the live serving runtime:
 * conservation, latency bounds, batching behaviour under load, the
 * throughput benefit of batch-amortized knowledge-base streaming,
 * the shared batching-dispatcher policy edge cases (maxBatch=1,
 * zero timeout, queue-full rejection), and the shutdown-drain
 * guarantee (every accepted request answered exactly once).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "serve/calibrate.hh"
#include "serve/latency_recorder.hh"
#include "serve/live_server.hh"
#include "serve/qa_server.hh"
#include "serve/request_queue.hh"
#include "util/rng.hh"

namespace mnnfast::serve {
namespace {

ServerConfig
baseConfig()
{
    ServerConfig cfg;
    cfg.arrivalRate = 2000.0;
    cfg.maxBatch = 32;
    cfg.batchTimeout = 2e-3;
    cfg.batchBaseSeconds = 1e-3;
    cfg.perQuestionSeconds = 4e-5;
    cfg.simSeconds = 3.0;
    return cfg;
}

TEST(QaServer, EveryArrivalCompletes)
{
    const auto stats = simulateServer(baseConfig());
    EXPECT_GT(stats.arrived, 1000u);
    EXPECT_EQ(stats.completed, stats.arrived);
}

TEST(QaServer, UnderloadedThroughputTracksArrivalRate)
{
    auto cfg = baseConfig();
    cfg.arrivalRate = 500.0; // far below capacity
    const auto stats = simulateServer(cfg);
    EXPECT_NEAR(stats.throughputQps, 500.0, 75.0);
    EXPECT_LT(stats.utilization, 0.9);
}

TEST(QaServer, LatencyIsAtLeastTheServiceTime)
{
    const auto stats = simulateServer(baseConfig());
    EXPECT_GE(stats.p50Latency, baseConfig().batchBaseSeconds);
    EXPECT_LE(stats.p50Latency, stats.p95Latency);
    EXPECT_LE(stats.p95Latency, stats.p99Latency);
}

TEST(QaServer, TimeoutBoundsLatencyAtLowLoad)
{
    auto cfg = baseConfig();
    cfg.arrivalRate = 100.0; // batches rarely fill: timeout path
    const auto stats = simulateServer(cfg);
    // Wait (<= timeout) + service of a small batch + slack.
    const double bound = cfg.batchTimeout + cfg.batchBaseSeconds
                       + cfg.maxBatch * cfg.perQuestionSeconds + 1e-3;
    EXPECT_LE(stats.p99Latency, bound);
    // Mostly-singleton batches at this load.
    EXPECT_LT(stats.meanBatchSize, 4.0);
}

TEST(QaServer, LoadIncreasesLatency)
{
    auto low = baseConfig();
    low.arrivalRate = 500.0;
    auto high = baseConfig();
    high.arrivalRate = 15000.0;
    EXPECT_GT(simulateServer(high).p95Latency,
              simulateServer(low).p95Latency);
}

TEST(QaServer, BatchingRaisesOverloadThroughput)
{
    // Capacity with batch n is n / (base + n*per): heavily batched
    // service amortizes the shared KB stream. At an overload rate,
    // the batched server must complete far more questions/sec.
    auto batched = baseConfig();
    batched.arrivalRate = 20000.0;
    batched.maxBatch = 32;

    auto serial = batched;
    serial.maxBatch = 1;

    const auto b = simulateServer(batched);
    const auto s = simulateServer(serial);
    EXPECT_GT(b.throughputQps, s.throughputQps * 3.0);
    EXPECT_GT(b.meanBatchSize, 8.0);
    EXPECT_NEAR(s.meanBatchSize, 1.0, 1e-9);
}

TEST(QaServer, MoreWorkersHelpUnderOverload)
{
    auto one = baseConfig();
    one.arrivalRate = 20000.0;
    auto two = one;
    two.workers = 2;
    EXPECT_GT(simulateServer(two).throughputQps,
              simulateServer(one).throughputQps * 1.3);
}

TEST(QaServer, UtilizationSaturatesUnderOverload)
{
    auto cfg = baseConfig();
    cfg.arrivalRate = 50000.0;
    const auto stats = simulateServer(cfg);
    EXPECT_GT(stats.utilization, 0.95);
    EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

TEST(QaServer, DeterministicForSameSeed)
{
    const auto a = simulateServer(baseConfig());
    const auto b = simulateServer(baseConfig());
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_DOUBLE_EQ(a.p99Latency, b.p99Latency);
}

TEST(QaServer, InvalidConfigIsFatal)
{
    auto cfg = baseConfig();
    cfg.maxBatch = 0;
    EXPECT_EXIT(simulateServer(cfg), ::testing::ExitedWithCode(1),
                "batch cap");
    auto cfg2 = baseConfig();
    cfg2.arrivalRate = 0.0;
    EXPECT_EXIT(simulateServer(cfg2), ::testing::ExitedWithCode(1),
                "arrival rate");
}

TEST(Calibrate, FitsUsableServiceModelFromRealEngine)
{
    // Smoke test: calibrate against a real (small) column engine and
    // check the fit is sane and drives the simulator.
    const size_t ns = 2000, ed = 32;
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(7);
    std::vector<float> min_row(ed), mout_row(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            min_row[e] = rng.uniformRange(-0.5f, 0.5f);
            mout_row[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(min_row.data(), mout_row.data());
    }
    core::EngineConfig ecfg;
    ecfg.chunkSize = 256;
    core::ColumnEngine engine(kb, ecfg);

    const ServiceTimeFit fit =
        calibrateServiceTimes(engine, ed, /*smallBatch=*/1,
                              /*largeBatch=*/8, /*repeats=*/3);

    // Coefficients are clamped non-negative and the measurements are
    // real (a 2000x32 KB pass cannot take zero time).
    EXPECT_GE(fit.batchBaseSeconds, 0.0);
    EXPECT_GE(fit.perQuestionSeconds, 0.0);
    EXPECT_GT(fit.smallSeconds, 0.0);
    EXPECT_GT(fit.largeSeconds, 0.0);
    EXPECT_GT(fit.batchBaseSeconds + fit.perQuestionSeconds, 0.0);
    EXPECT_EQ(fit.smallBatch, 1u);
    EXPECT_EQ(fit.largeBatch, 8u);

    // batchBase = max(0, small - smallBatch*perQ) can never exceed the
    // small-batch measurement itself. The full fit reproduces that
    // measurement exactly only when the non-negativity clamp did not
    // fire (with noisy timings, large > 8*small clamps batchBase to 0
    // and the fitted t(1) overshoots — by design, not a bug).
    EXPECT_LE(fit.batchBaseSeconds, fit.smallSeconds * 1.0000001 + 1e-12);
    if (fit.batchBaseSeconds > 0.0) {
        const double t1 = fit.batchBaseSeconds + fit.perQuestionSeconds;
        EXPECT_NEAR(t1, fit.smallSeconds, fit.smallSeconds * 1e-6 + 1e-12);
    }

    // And it plugs straight into the simulator.
    ServerConfig scfg = baseConfig();
    scfg.arrivalRate = 100.0;
    scfg.simSeconds = 0.5;
    fit.apply(scfg);
    EXPECT_EQ(scfg.batchBaseSeconds, fit.batchBaseSeconds);
    EXPECT_EQ(scfg.perQuestionSeconds, fit.perQuestionSeconds);
    const auto stats = simulateServer(scfg);
    EXPECT_EQ(stats.arrived, stats.completed);
}

TEST(Calibrate, RejectsDegenerateArguments)
{
    const size_t ed = 8;
    core::KnowledgeBase kb(ed);
    std::vector<float> row(ed, 0.1f);
    kb.addSentence(row.data(), row.data());
    core::EngineConfig ecfg;
    core::ColumnEngine engine(kb, ecfg);
    EXPECT_DEATH(calibrateServiceTimes(engine, ed, 4, 4, 1),
                 "batch sizes");
    EXPECT_DEATH(calibrateServiceTimes(engine, ed, 1, 4, 0), "repeat");
}

// ---------------------------------------------------------------
// RequestQueue: the batching dispatcher shared by sim and live paths.
// ---------------------------------------------------------------

using IntQueue = RequestQueue<int>;
using namespace std::chrono_literals;

TEST(RequestQueue, TryPushRejectsWhenFull)
{
    IntQueue q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)); // backpressure: refuse, don't block
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, MaxBatchOneYieldsSingletons)
{
    IntQueue q(8);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(q.tryPush(int(i)));
    std::vector<IntQueue::Entry> batch;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(q.popBatch(1, 0ns, batch));
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch[0].item, i); // FIFO order preserved
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, ZeroTimeoutDispatchesPartialBatchImmediately)
{
    IntQueue q(8);
    ASSERT_TRUE(q.tryPush(1));
    ASSERT_TRUE(q.tryPush(2));
    std::vector<IntQueue::Entry> batch;
    // Cap 8 with only 2 pending: a zero timeout must not wait for a
    // full batch.
    ASSERT_TRUE(q.popBatch(8, 0ns, batch));
    EXPECT_EQ(batch.size(), 2u);
}

TEST(RequestQueue, FullBatchDispatchesBeforeTimeout)
{
    IntQueue q(8);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.tryPush(int(i)));
    std::vector<IntQueue::Entry> batch;
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(q.popBatch(4, std::chrono::hours(1), batch));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_LT(elapsed, 10s); // did not sit out the huge timeout
}

TEST(RequestQueue, TimeoutReleasesOldestPartialBatch)
{
    IntQueue q(8);
    ASSERT_TRUE(q.tryPush(42));
    std::vector<IntQueue::Entry> batch;
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(q.popBatch(8, 20ms, batch));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_GE(elapsed, 19ms); // held until the head timed out
}

TEST(RequestQueue, CloseDrainsRemainderThenReportsEmpty)
{
    IntQueue q(8);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(q.tryPush(int(i)));
    q.close();
    EXPECT_FALSE(q.tryPush(99)); // no admissions after close

    std::vector<IntQueue::Entry> batch;
    // Drain releases immediately (no timeout wait), in caps.
    ASSERT_TRUE(q.popBatch(2, std::chrono::hours(1), batch));
    EXPECT_EQ(batch.size(), 2u);
    ASSERT_TRUE(q.popBatch(2, std::chrono::hours(1), batch));
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_FALSE(q.popBatch(2, std::chrono::hours(1), batch));
    EXPECT_TRUE(batch.empty());
}

TEST(RequestQueue, CloseWakesBlockedConsumer)
{
    IntQueue q(4);
    std::thread consumer([&q] {
        std::vector<IntQueue::Entry> batch;
        // Blocks on the empty queue until close() wakes it.
        EXPECT_FALSE(q.popBatch(4, std::chrono::hours(1), batch));
    });
    std::this_thread::sleep_for(10ms);
    q.close();
    consumer.join();
}

TEST(RequestQueue, ZeroCapacityIsFatal)
{
    EXPECT_EXIT(IntQueue q(0), ::testing::ExitedWithCode(1),
                "capacity");
}

// ---------------------------------------------------------------
// LatencyRecorder
// ---------------------------------------------------------------

TEST(LatencyRecorder, MergesWorkersIntoOneSnapshot)
{
    LatencyRecorder a(1.0, 100);
    LatencyRecorder b(1.0, 100);
    a.recordBatch(2);
    a.recordRequest(0.010, 0.020, 0.030);
    a.recordRequest(0.010, 0.020, 0.030);
    b.recordBatch(1);
    b.recordRequest(0.050, 0.100, 0.150);

    LatencyRecorder merged(1.0, 100);
    a.mergeInto(merged);
    b.mergeInto(merged);
    const LatencySnapshot s = merged.snapshot();
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.batches, 2u);
    EXPECT_DOUBLE_EQ(s.meanBatchSize, 1.5);
    EXPECT_NEAR(s.endToEnd.mean, (0.030 * 2 + 0.150) / 3, 1e-12);
    EXPECT_DOUBLE_EQ(s.endToEnd.max, 0.150);
    EXPECT_LE(s.endToEnd.p50, s.endToEnd.p95);
    EXPECT_LE(s.endToEnd.p95, s.endToEnd.p99);
}

TEST(LatencyRecorder, SnapshotJsonHasEveryField)
{
    LatencyRecorder r(1.0, 100);
    r.recordBatch(1);
    r.recordRequest(0.001, 0.002, 0.003);
    LatencySnapshot s = r.snapshot();
    s.arrived = 3;
    s.rejected = 2;
    s.rejectedFull = 1;
    s.rejectedShutdown = 1;
    const std::string j = s.toJson();
    for (const char *key :
         {"\"arrived\"", "\"rejected\"", "\"rejected_full\"",
          "\"rejected_shutdown\"", "\"completed\"",
          "\"batches\"", "\"mean_batch_size\"",
          "\"queue_wait_seconds\"", "\"service_seconds\"",
          "\"end_to_end_seconds\"", "\"p50\"", "\"p95\"", "\"p99\""})
        EXPECT_NE(j.find(key), std::string::npos) << key;
}

// ---------------------------------------------------------------
// LiveServer
// ---------------------------------------------------------------

core::KnowledgeBase
makeKb(size_t ns, size_t ed, uint64_t seed = 5)
{
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(seed);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

LiveServerConfig
liveConfig()
{
    LiveServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.batchTimeout = 1e-3;
    cfg.workers = 2;
    cfg.queueCapacity = 256;
    cfg.engine.chunkSize = 64;
    return cfg;
}

TEST(LiveServer, AnswersAreBitIdenticalToAReferenceEngine)
{
    // The query-blocked dataflow is bit-identical across batch
    // compositions (property-tested elsewhere), so whatever batches
    // the dispatcher forms, each answer must equal a lone infer()
    // on an identically-configured engine.
    const size_t ns = 300, ed = 16, n_requests = 40;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    LiveServerConfig cfg = liveConfig();
    core::ColumnEngine reference(kb, cfg.engine);

    LiveServer server(kb, cfg);
    XorShiftRng rng(17);
    std::vector<std::vector<float>> questions(n_requests);
    std::vector<std::future<Answer>> futures;
    for (auto &q : questions) {
        q.resize(ed);
        for (float &x : q)
            x = rng.uniformRange(-1.f, 1.f);
        Ticket t = server.submit(q.data());
        ASSERT_TRUE(t.accepted());
        futures.push_back(std::move(t.answer));
    }
    server.shutdown();

    std::vector<float> expected(ed);
    for (size_t i = 0; i < n_requests; ++i) {
        Answer a = futures[i].get();
        ASSERT_EQ(a.o.size(), ed);
        EXPECT_GE(a.batchSize, 1u);
        EXPECT_LE(a.batchSize, cfg.maxBatch);
        reference.infer(questions[i].data(), expected.data());
        for (size_t e = 0; e < ed; ++e)
            EXPECT_EQ(a.o[e], expected[e]) << "request " << i
                                           << " element " << e;
    }
}

TEST(LiveServer, ShutdownDrainsInFlightWithoutLosingFutures)
{
    // Flood the server and shut down immediately: every accepted
    // request must complete exactly once (a lost promise would hang
    // or throw broken_promise; a double set_value would throw).
    const core::KnowledgeBase kb = makeKb(200, 8);
    LiveServerConfig cfg = liveConfig();
    cfg.batchTimeout = 50e-3; // requests are mid-queue at shutdown
    LiveServer server(kb, cfg);

    std::vector<float> q(8, 0.25f);
    std::vector<std::future<Answer>> futures;
    uint64_t accepted = 0, refused = 0;
    for (int i = 0; i < 200; ++i) {
        Ticket t = server.submit(q.data());
        if (t.accepted()) {
            ++accepted;
            futures.push_back(std::move(t.answer));
        } else {
            ++refused;
        }
    }
    server.shutdown();

    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
        EXPECT_EQ(f.get().o.size(), 8u);
    }
    // One straggler after shutdown: refused for a different reason
    // than the queue-full rejections above, and the snapshot must
    // attribute each to its own counter (backpressure tuning needs
    // "full", deploy-drain monitoring needs "shutdown").
    Ticket late = server.submit(q.data());
    EXPECT_EQ(late.status, SubmitStatus::ShuttingDown);

    const LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.arrived, 201u);
    EXPECT_EQ(s.completed, accepted);
    EXPECT_EQ(s.rejectedFull, refused);
    EXPECT_EQ(s.rejectedShutdown, 1u);
    EXPECT_EQ(s.rejected, s.rejectedFull + s.rejectedShutdown);
    EXPECT_EQ(s.completed + s.rejected, s.arrived);
}

TEST(LiveServer, FullQueueRejectsWithBackpressureStatus)
{
    const core::KnowledgeBase kb = makeKb(100, 8);
    LiveServerConfig cfg = liveConfig();
    cfg.workers = 1;
    cfg.maxBatch = 64;       // > capacity: the worker cannot dispatch
    cfg.batchTimeout = 10.0; // until this (never reached) timeout
    cfg.queueCapacity = 4;
    LiveServer server(kb, cfg);

    std::vector<float> q(8, 0.5f);
    std::vector<std::future<Answer>> futures;
    size_t rejected = 0;
    for (int i = 0; i < 10; ++i) {
        Ticket t = server.submit(q.data());
        if (t.accepted()) {
            futures.push_back(std::move(t.answer));
        } else {
            EXPECT_EQ(t.status, SubmitStatus::Rejected);
            ++rejected;
        }
    }
    // The worker holds for a full batch or the 10 s timeout, so the
    // queue held exactly its capacity and the overflow was rejected.
    EXPECT_EQ(futures.size(), 4u);
    EXPECT_EQ(rejected, 6u);

    server.shutdown(); // close() flushes the partial batch
    for (auto &f : futures)
        EXPECT_EQ(f.get().o.size(), 8u);

    // After shutdown, submissions report the terminal status.
    Ticket late = server.submit(q.data());
    EXPECT_EQ(late.status, SubmitStatus::ShuttingDown);
    const LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.completed, 4u);
    // 6 queue-full rejections while serving, 1 post-shutdown refusal:
    // the split must attribute each to the right cause.
    EXPECT_EQ(s.rejectedFull, 6u);
    EXPECT_EQ(s.rejectedShutdown, 1u);
    EXPECT_EQ(s.rejected, 7u);
    EXPECT_EQ(s.arrived, 11u);
}

TEST(LiveServer, MaxBatchOneServesEveryRequestAlone)
{
    const core::KnowledgeBase kb = makeKb(100, 8);
    LiveServerConfig cfg = liveConfig();
    cfg.maxBatch = 1;
    LiveServer server(kb, cfg);

    std::vector<float> q(8, -0.5f);
    std::vector<std::future<Answer>> futures;
    for (int i = 0; i < 30; ++i) {
        Ticket t = server.submit(q.data());
        ASSERT_TRUE(t.accepted());
        futures.push_back(std::move(t.answer));
    }
    server.shutdown();
    for (auto &f : futures)
        EXPECT_EQ(f.get().batchSize, 1u);

    const LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.batches, 30u);
    EXPECT_DOUBLE_EQ(s.meanBatchSize, 1.0);
}

TEST(LiveServer, ZeroTimeoutDispatchesEagerly)
{
    const core::KnowledgeBase kb = makeKb(100, 8);
    LiveServerConfig cfg = liveConfig();
    cfg.batchTimeout = 0.0; // dispatch the moment a worker is free
    LiveServer server(kb, cfg);

    std::vector<float> q(8, 0.1f);
    std::vector<std::future<Answer>> futures;
    for (int i = 0; i < 50; ++i) {
        Ticket t = server.submit(q.data());
        ASSERT_TRUE(t.accepted());
        futures.push_back(std::move(t.answer));
    }
    for (auto &f : futures) {
        const Answer a = f.get();
        EXPECT_GE(a.batchSize, 1u);
        EXPECT_LE(a.batchSize, cfg.maxBatch);
    }
    server.shutdown();
    const LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.completed, 50u);
    EXPECT_EQ(s.rejected, 0u);
}

TEST(LiveServer, SnapshotQuantilesAreOrderedAndComplete)
{
    const core::KnowledgeBase kb = makeKb(200, 16);
    LiveServer server(kb, liveConfig());
    std::vector<float> q(16, 0.3f);
    std::vector<std::future<Answer>> futures;
    for (int i = 0; i < 60; ++i) {
        Ticket t = server.submit(q.data());
        ASSERT_TRUE(t.accepted());
        futures.push_back(std::move(t.answer));
    }
    server.shutdown();
    for (auto &f : futures)
        f.get();

    const LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.endToEnd.count, 60u);
    EXPECT_EQ(s.queueWait.count, 60u);
    EXPECT_EQ(s.service.count, 60u);
    EXPECT_LE(s.endToEnd.p50, s.endToEnd.p95);
    EXPECT_LE(s.endToEnd.p95, s.endToEnd.p99);
    EXPECT_GT(s.service.mean, 0.0);
    // End-to-end dominates its queue-wait and service components on
    // every path, so the means must order the same way.
    EXPECT_GE(s.endToEnd.mean, s.queueWait.mean);
    EXPECT_GE(s.endToEnd.mean, s.service.mean);
    EXPECT_GE(s.batches, 1u);
}

TEST(LiveServer, ConcurrentSnapshotsNeverShowPhantomBacklog)
{
    // snapshot() latches `arrived` before the rejection counters and
    // both before merging the completion histograms (see
    // live_server.hh). A monitor thread polling mid-flood must
    // therefore never observe an apparent backlog
    // (arrived - rejected - completed) beyond what can physically be
    // in flight: the queue plus one dispatched batch per engine slot.
    // Reading the counters in the opposite order would routinely
    // violate this under load. The guarantee is one-sided: between
    // latching `arrived` and the later reads, more requests can be
    // rejected/completed, so the signed backlog may transiently go
    // *negative* — it must only never exceed the physical bound.
    const core::KnowledgeBase kb = makeKb(150, 8);
    LiveServerConfig cfg = liveConfig();
    cfg.queueCapacity = 32;
    cfg.batchTimeout = 0.0;
    LiveServer server(kb, cfg);
    const uint64_t in_flight_bound =
        cfg.queueCapacity + server.engineSlots() * cfg.maxBatch;

    std::atomic<bool> done{false};
    std::thread monitor([&] {
        uint64_t prev_arrived = 0, prev_completed = 0;
        while (!done.load(std::memory_order_acquire)) {
            const LatencySnapshot s = server.snapshot();
            const int64_t backlog = int64_t(s.arrived)
                                  - int64_t(s.rejected)
                                  - int64_t(s.completed);
            ASSERT_LE(backlog, int64_t(in_flight_bound));
            ASSERT_EQ(s.rejected, s.rejectedFull + s.rejectedShutdown);
            // Successive snapshots from one thread are monotone.
            ASSERT_GE(s.arrived, prev_arrived);
            ASSERT_GE(s.completed, prev_completed);
            prev_arrived = s.arrived;
            prev_completed = s.completed;
        }
    });

    std::vector<float> q(8, 0.4f);
    std::vector<std::future<Answer>> futures;
    for (int i = 0; i < 600; ++i) {
        Ticket t = server.submit(q.data());
        if (t.accepted())
            futures.push_back(std::move(t.answer));
    }
    server.shutdown();
    done.store(true, std::memory_order_release);
    monitor.join();
    for (auto &f : futures)
        f.get();

    // After shutdown the books balance exactly.
    const LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.arrived,
              s.completed + s.rejectedFull + s.rejectedShutdown);
    EXPECT_EQ(s.completed, futures.size());
}

TEST(LiveServer, ShutdownIsIdempotentAndDtorSafe)
{
    const core::KnowledgeBase kb = makeKb(50, 8);
    LiveServer server(kb, liveConfig());
    std::vector<float> q(8, 0.7f);
    Ticket t = server.submit(q.data());
    ASSERT_TRUE(t.accepted());
    server.shutdown();
    server.shutdown(); // second call is a no-op
    EXPECT_EQ(t.answer.get().o.size(), 8u);
    EXPECT_FALSE(server.accepting());
    // Destructor runs shutdown again — must not deadlock or double-free.
}

TEST(LiveServer, InvalidConfigIsFatal)
{
    const core::KnowledgeBase kb = makeKb(10, 4);
    LiveServerConfig bad_workers = liveConfig();
    bad_workers.workers = 0;
    EXPECT_EXIT(LiveServer(kb, bad_workers),
                ::testing::ExitedWithCode(1), "worker");

    LiveServerConfig bad_batch = liveConfig();
    bad_batch.maxBatch = 0;
    EXPECT_EXIT(LiveServer(kb, bad_batch),
                ::testing::ExitedWithCode(1), "batch cap");

    LiveServerConfig bad_timeout = liveConfig();
    bad_timeout.batchTimeout = -1.0;
    EXPECT_EXIT(LiveServer(kb, bad_timeout),
                ::testing::ExitedWithCode(1), "timeout");

    const core::KnowledgeBase empty(4);
    EXPECT_EXIT(LiveServer(empty, liveConfig()),
                ::testing::ExitedWithCode(1), "non-empty");
}

} // namespace
} // namespace mnnfast::serve
