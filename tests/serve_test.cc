/**
 * @file
 * Tests for the QA-server simulation: conservation, latency bounds,
 * batching behaviour under load, and the throughput benefit of
 * batch-amortized knowledge-base streaming.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "serve/calibrate.hh"
#include "serve/qa_server.hh"
#include "util/rng.hh"

namespace mnnfast::serve {
namespace {

ServerConfig
baseConfig()
{
    ServerConfig cfg;
    cfg.arrivalRate = 2000.0;
    cfg.maxBatch = 32;
    cfg.batchTimeout = 2e-3;
    cfg.batchBaseSeconds = 1e-3;
    cfg.perQuestionSeconds = 4e-5;
    cfg.simSeconds = 3.0;
    return cfg;
}

TEST(QaServer, EveryArrivalCompletes)
{
    const auto stats = simulateServer(baseConfig());
    EXPECT_GT(stats.arrived, 1000u);
    EXPECT_EQ(stats.completed, stats.arrived);
}

TEST(QaServer, UnderloadedThroughputTracksArrivalRate)
{
    auto cfg = baseConfig();
    cfg.arrivalRate = 500.0; // far below capacity
    const auto stats = simulateServer(cfg);
    EXPECT_NEAR(stats.throughputQps, 500.0, 75.0);
    EXPECT_LT(stats.utilization, 0.9);
}

TEST(QaServer, LatencyIsAtLeastTheServiceTime)
{
    const auto stats = simulateServer(baseConfig());
    EXPECT_GE(stats.p50Latency, baseConfig().batchBaseSeconds);
    EXPECT_LE(stats.p50Latency, stats.p95Latency);
    EXPECT_LE(stats.p95Latency, stats.p99Latency);
}

TEST(QaServer, TimeoutBoundsLatencyAtLowLoad)
{
    auto cfg = baseConfig();
    cfg.arrivalRate = 100.0; // batches rarely fill: timeout path
    const auto stats = simulateServer(cfg);
    // Wait (<= timeout) + service of a small batch + slack.
    const double bound = cfg.batchTimeout + cfg.batchBaseSeconds
                       + cfg.maxBatch * cfg.perQuestionSeconds + 1e-3;
    EXPECT_LE(stats.p99Latency, bound);
    // Mostly-singleton batches at this load.
    EXPECT_LT(stats.meanBatchSize, 4.0);
}

TEST(QaServer, LoadIncreasesLatency)
{
    auto low = baseConfig();
    low.arrivalRate = 500.0;
    auto high = baseConfig();
    high.arrivalRate = 15000.0;
    EXPECT_GT(simulateServer(high).p95Latency,
              simulateServer(low).p95Latency);
}

TEST(QaServer, BatchingRaisesOverloadThroughput)
{
    // Capacity with batch n is n / (base + n*per): heavily batched
    // service amortizes the shared KB stream. At an overload rate,
    // the batched server must complete far more questions/sec.
    auto batched = baseConfig();
    batched.arrivalRate = 20000.0;
    batched.maxBatch = 32;

    auto serial = batched;
    serial.maxBatch = 1;

    const auto b = simulateServer(batched);
    const auto s = simulateServer(serial);
    EXPECT_GT(b.throughputQps, s.throughputQps * 3.0);
    EXPECT_GT(b.meanBatchSize, 8.0);
    EXPECT_NEAR(s.meanBatchSize, 1.0, 1e-9);
}

TEST(QaServer, MoreWorkersHelpUnderOverload)
{
    auto one = baseConfig();
    one.arrivalRate = 20000.0;
    auto two = one;
    two.workers = 2;
    EXPECT_GT(simulateServer(two).throughputQps,
              simulateServer(one).throughputQps * 1.3);
}

TEST(QaServer, UtilizationSaturatesUnderOverload)
{
    auto cfg = baseConfig();
    cfg.arrivalRate = 50000.0;
    const auto stats = simulateServer(cfg);
    EXPECT_GT(stats.utilization, 0.95);
    EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

TEST(QaServer, DeterministicForSameSeed)
{
    const auto a = simulateServer(baseConfig());
    const auto b = simulateServer(baseConfig());
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_DOUBLE_EQ(a.p99Latency, b.p99Latency);
}

TEST(QaServer, InvalidConfigIsFatal)
{
    auto cfg = baseConfig();
    cfg.maxBatch = 0;
    EXPECT_EXIT(simulateServer(cfg), ::testing::ExitedWithCode(1),
                "batch cap");
    auto cfg2 = baseConfig();
    cfg2.arrivalRate = 0.0;
    EXPECT_EXIT(simulateServer(cfg2), ::testing::ExitedWithCode(1),
                "arrival rate");
}

TEST(Calibrate, FitsUsableServiceModelFromRealEngine)
{
    // Smoke test: calibrate against a real (small) column engine and
    // check the fit is sane and drives the simulator.
    const size_t ns = 2000, ed = 32;
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(7);
    std::vector<float> min_row(ed), mout_row(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            min_row[e] = rng.uniformRange(-0.5f, 0.5f);
            mout_row[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(min_row.data(), mout_row.data());
    }
    core::EngineConfig ecfg;
    ecfg.chunkSize = 256;
    core::ColumnEngine engine(kb, ecfg);

    const ServiceTimeFit fit =
        calibrateServiceTimes(engine, ed, /*smallBatch=*/1,
                              /*largeBatch=*/8, /*repeats=*/3);

    // Coefficients are clamped non-negative and the measurements are
    // real (a 2000x32 KB pass cannot take zero time).
    EXPECT_GE(fit.batchBaseSeconds, 0.0);
    EXPECT_GE(fit.perQuestionSeconds, 0.0);
    EXPECT_GT(fit.smallSeconds, 0.0);
    EXPECT_GT(fit.largeSeconds, 0.0);
    EXPECT_GT(fit.batchBaseSeconds + fit.perQuestionSeconds, 0.0);
    EXPECT_EQ(fit.smallBatch, 1u);
    EXPECT_EQ(fit.largeBatch, 8u);

    // batchBase = max(0, small - smallBatch*perQ) can never exceed the
    // small-batch measurement itself. The full fit reproduces that
    // measurement exactly only when the non-negativity clamp did not
    // fire (with noisy timings, large > 8*small clamps batchBase to 0
    // and the fitted t(1) overshoots — by design, not a bug).
    EXPECT_LE(fit.batchBaseSeconds, fit.smallSeconds * 1.0000001 + 1e-12);
    if (fit.batchBaseSeconds > 0.0) {
        const double t1 = fit.batchBaseSeconds + fit.perQuestionSeconds;
        EXPECT_NEAR(t1, fit.smallSeconds, fit.smallSeconds * 1e-6 + 1e-12);
    }

    // And it plugs straight into the simulator.
    ServerConfig scfg = baseConfig();
    scfg.arrivalRate = 100.0;
    scfg.simSeconds = 0.5;
    fit.apply(scfg);
    EXPECT_EQ(scfg.batchBaseSeconds, fit.batchBaseSeconds);
    EXPECT_EQ(scfg.perQuestionSeconds, fit.perQuestionSeconds);
    const auto stats = simulateServer(scfg);
    EXPECT_EQ(stats.arrived, stats.completed);
}

TEST(Calibrate, RejectsDegenerateArguments)
{
    const size_t ed = 8;
    core::KnowledgeBase kb(ed);
    std::vector<float> row(ed, 0.1f);
    kb.addSentence(row.data(), row.data());
    core::EngineConfig ecfg;
    core::ColumnEngine engine(kb, ecfg);
    EXPECT_DEATH(calibrateServiceTimes(engine, ed, 4, 4, 1),
                 "batch sizes");
    EXPECT_DEATH(calibrateServiceTimes(engine, ed, 1, 4, 0), "repeat");
}

} // namespace
} // namespace mnnfast::serve
