/**
 * @file
 * Tests for the MnnFastSystem facade: agreement with the trainer's
 * forward pass, engine-kind interchangeability, story management, and
 * batch answering.
 */

#include <gtest/gtest.h>

#include "core/mnnfast.hh"
#include "data/babi.hh"
#include "train/model.hh"
#include "train/trainer.hh"

namespace mnnfast::core {
namespace {

train::ModelConfig
smallModelConfig(size_t vocab)
{
    train::ModelConfig cfg;
    cfg.vocabSize = vocab;
    cfg.embeddingDim = 16;
    cfg.hops = 2;
    cfg.maxStory = 32;
    return cfg;
}

class FacadeVsTrainer : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(FacadeVsTrainer, PredictionsAgreeWithTrainerForward)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            41);
    train::MemNnModel model(smallModelConfig(vocab.size()), 42);

    EngineConfig ecfg;
    ecfg.chunkSize = 8;
    // The paper's default skip threshold (0.1) would change untrained
    // near-uniform attention; equivalence is checked with skipping
    // effectively off for the MnnFast kind.
    ecfg.skipThreshold = 1e-9f;
    MnnFastSystem system =
        MnnFastSystem::fromTrained(model, GetParam(), ecfg);

    train::ForwardState state;
    int checked = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const data::Example ex = gen.generate(12);
        model.forward(ex, state);
        const data::WordId expected = model.predict(state);

        system.clearStory();
        for (const auto &s : ex.story)
            system.addStorySentence(s);
        const data::WordId got = system.ask(ex.question);
        EXPECT_EQ(got, expected) << "trial " << trial;
        ++checked;
    }
    EXPECT_EQ(checked, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, FacadeVsTrainer,
    ::testing::Values(EngineKind::Baseline, EngineKind::Column,
                      EngineKind::ColumnStreaming, EngineKind::MnnFast),
    [](const ::testing::TestParamInfo<EngineKind> &info) {
        std::string n = engineKindName(info.param);
        for (char &c : n)
            if (c == '+' || c == '-')
                c = '_';
        return n;
    });

TEST(MnnFastSystem, AskBatchMatchesIndividualAsks)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 43);

    SystemConfig cfg;
    cfg.vocabSize = vocab.size();
    cfg.embeddingDim = 16;
    cfg.hops = 1;
    cfg.engine = EngineKind::Column;
    cfg.engineConfig.chunkSize = 4;
    MnnFastSystem system(cfg, 44);

    const data::Example ex = gen.generate(10);
    for (const auto &s : ex.story)
        system.addStorySentence(s);

    std::vector<data::Sentence> questions;
    for (int i = 0; i < 5; ++i)
        questions.push_back(gen.generate(10).question);

    const auto batch = system.askBatch(questions);
    ASSERT_EQ(batch.size(), questions.size());
    for (size_t i = 0; i < questions.size(); ++i)
        EXPECT_EQ(batch[i], system.ask(questions[i]));
}

TEST(MnnFastSystem, StoryManagement)
{
    SystemConfig cfg;
    cfg.vocabSize = 10;
    cfg.embeddingDim = 8;
    cfg.engine = EngineKind::Column;
    MnnFastSystem system(cfg, 45);

    EXPECT_EQ(system.storySize(), 0u);
    system.addStorySentence({1, 2, 3});
    system.addStorySentence({4, 5});
    EXPECT_EQ(system.storySize(), 2u);
    system.clearStory();
    EXPECT_EQ(system.storySize(), 0u);
}

TEST(MnnFastSystem, AskWithoutStoryPanics)
{
    SystemConfig cfg;
    cfg.vocabSize = 10;
    cfg.embeddingDim = 8;
    MnnFastSystem system(cfg, 46);
    EXPECT_DEATH(system.ask({1, 2}), "story");
}

TEST(MnnFastSystem, AllEngineKindsAgreeOnUntrainedWeights)
{
    // With identical weights and story, all four dataflows must give
    // the same arg-max answer (skipping disabled via tiny threshold).
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::TwoSupportingFacts, vocab,
                            47);
    const data::Example ex = gen.generate(16);

    std::vector<data::WordId> answers;
    for (EngineKind kind :
         {EngineKind::Baseline, EngineKind::Column,
          EngineKind::ColumnStreaming, EngineKind::MnnFast}) {
        SystemConfig cfg;
        cfg.vocabSize = vocab.size();
        cfg.embeddingDim = 24;
        cfg.hops = 2;
        cfg.engine = kind;
        cfg.engineConfig.chunkSize = 5;
        cfg.engineConfig.skipThreshold = 1e-9f;
        MnnFastSystem system(cfg, /*seed=*/77);
        for (const auto &s : ex.story)
            system.addStorySentence(s);
        answers.push_back(system.ask(ex.question));
    }
    for (size_t i = 1; i < answers.size(); ++i)
        EXPECT_EQ(answers[i], answers[0]);
}

TEST(MnnFastSystem, TrainedSystemAnswersAccurately)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            48);
    const data::Dataset train_set = gen.generateSet(400, 6);
    const data::Dataset test_set = gen.generateSet(60, 6);

    train::ModelConfig mc = smallModelConfig(vocab.size());
    mc.embeddingDim = 20;
    train::MemNnModel model(mc, 49);
    train::TrainConfig tc;
    tc.epochs = 25;
    tc.learningRate = 0.03f;
    train::trainModel(model, train_set, tc);

    EngineConfig ecfg;
    ecfg.chunkSize = 8;
    ecfg.skipThreshold = 0.05f; // a real, useful threshold
    MnnFastSystem system =
        MnnFastSystem::fromTrained(model, EngineKind::MnnFast, ecfg);

    size_t correct = 0;
    for (const auto &ex : test_set.examples) {
        system.clearStory();
        for (const auto &s : ex.story)
            system.addStorySentence(s);
        correct += system.ask(ex.question) == ex.answer;
    }
    const double acc = double(correct) / test_set.size();
    EXPECT_GT(acc, 0.6) << "trained MnnFast accuracy " << acc;
}

TEST(MnnFastSystem, ExplainFindsTheSupportingFact)
{
    // Train until the model is accurate, then check its hop-0
    // attention actually points at the annotated supporting fact —
    // the mechanism behind the paper's Fig. 6 sparsity.
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            51);
    const data::Dataset train_set = gen.generateSet(500, 8);

    train::ModelConfig mc = smallModelConfig(vocab.size());
    mc.hops = 1;
    mc.embeddingDim = 24;
    train::MemNnModel model(mc, 52);
    train::TrainConfig tc;
    tc.epochs = 25;
    tc.learningRate = 0.04f;
    train::trainModel(model, train_set, tc);

    EngineConfig ecfg;
    ecfg.chunkSize = 4;
    auto system = MnnFastSystem::fromTrained(
        model, EngineKind::Column, ecfg);

    size_t hits = 0;
    const size_t trials = 50;
    for (size_t t = 0; t < trials; ++t) {
        const data::Example ex = gen.generate(8);
        system.clearStory();
        for (const auto &s : ex.story)
            system.addStorySentence(s);
        const auto attribution = system.explain(ex.question, 1);
        ASSERT_EQ(attribution.size(), 1u);
        hits += attribution[0].sentence == ex.supportingFacts[0];
    }
    EXPECT_GT(hits, trials * 6 / 10)
        << "attention found the supporting fact " << hits << "/"
        << trials;
}

TEST(MnnFastSystem, ExplainReturnsSortedProbabilities)
{
    SystemConfig cfg;
    cfg.vocabSize = 20;
    cfg.embeddingDim = 8;
    cfg.engine = EngineKind::Column;
    MnnFastSystem system(cfg, 53);
    for (int i = 0; i < 10; ++i)
        system.addStorySentence({data::WordId(i), data::WordId(i + 1)});

    const auto attribution = system.explain({1, 2, 3}, 5);
    ASSERT_EQ(attribution.size(), 5u);
    double total = 0.0;
    for (size_t i = 1; i < attribution.size(); ++i)
        EXPECT_LE(attribution[i].probability,
                  attribution[i - 1].probability);
    for (const auto &a : attribution) {
        EXPECT_LT(a.sentence, 10u);
        total += a.probability;
    }
    EXPECT_LE(total, 1.0 + 1e-5);
}

TEST(MnnFastSystem, ExplainTopKClampsToStorySize)
{
    SystemConfig cfg;
    cfg.vocabSize = 10;
    cfg.embeddingDim = 8;
    MnnFastSystem system(cfg, 54);
    system.addStorySentence({1, 2});
    system.addStorySentence({3, 4});
    EXPECT_EQ(system.explain({1}, 10).size(), 2u);
}

TEST(EmbeddingTable, RowLookupAndInit)
{
    EmbeddingTable table(10, 4);
    for (size_t e = 0; e < 4; ++e)
        EXPECT_EQ(table.row(3)[e], 0.f);
    table.randomInit(1, 0.5f);
    bool any_nonzero = false;
    for (data::WordId w = 0; w < 10; ++w)
        for (size_t e = 0; e < 4; ++e)
            any_nonzero = any_nonzero || table.row(w)[e] != 0.f;
    EXPECT_TRUE(any_nonzero);
    EXPECT_EQ(table.bytes(), 10u * 4 * sizeof(float));
}

TEST(EmbeddingTable, OutOfRangeLookupPanics)
{
    EmbeddingTable table(4, 4);
    EXPECT_DEATH(table.row(4), "range");
}

TEST(Embedder, SumsRowsWithMultiplicity)
{
    EmbeddingTable table(3, 2);
    table.row(0)[0] = 1.f;
    table.row(1)[0] = 10.f;
    table.row(2)[1] = 5.f;

    Embedder embedder(table);
    float out[2];
    embedder.embed({0, 1, 1, 2}, out);
    EXPECT_FLOAT_EQ(out[0], 21.f);
    EXPECT_FLOAT_EQ(out[1], 5.f);
    EXPECT_EQ(embedder.lookups(), 4u);
}

TEST(Embedder, ObserverSeesEveryLookup)
{
    EmbeddingTable table(5, 2);
    Embedder embedder(table);
    std::vector<data::WordId> seen;
    embedder.setObserver([&](data::WordId w) { seen.push_back(w); });
    float out[2];
    embedder.embed({4, 0, 4}, out);
    EXPECT_EQ(seen, (std::vector<data::WordId>{4, 0, 4}));
}

} // namespace
} // namespace mnnfast::core
