/**
 * @file
 * Tests for the trainable end-to-end MemNN: finite-difference gradient
 * verification, training convergence on the synthetic tasks, and the
 * zero-skipping forward pass.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/babi.hh"
#include "train/gradcheck.hh"
#include "train/model.hh"
#include "train/trainer.hh"

namespace mnnfast::train {
namespace {

ModelConfig
tinyConfig(size_t vocab, size_t hops)
{
    ModelConfig cfg;
    cfg.vocabSize = vocab;
    cfg.embeddingDim = 8;
    cfg.hops = hops;
    cfg.maxStory = 16;
    return cfg;
}

TEST(ParamSet, AllocateShapesMatchConfig)
{
    ModelConfig cfg = tinyConfig(20, 2);
    ParamSet p;
    p.allocate(cfg);
    EXPECT_EQ(p.b.size(), 20u * 8);
    EXPECT_EQ(p.w.size(), 20u * 8);
    ASSERT_EQ(p.a.size(), 2u);
    EXPECT_EQ(p.a[0].size(), 20u * 8);
    EXPECT_EQ(p.ta[0].size(), 16u * 8);
}

TEST(ParamSet, ZeroAndNormAndAddScaled)
{
    ModelConfig cfg = tinyConfig(5, 1);
    ParamSet p, q;
    p.allocate(cfg);
    q.allocate(cfg);
    p.b[0] = 3.f;
    q.b[0] = 2.f;
    EXPECT_DOUBLE_EQ(p.squaredNorm(), 9.0);
    p.addScaled(q, -0.5f);
    EXPECT_FLOAT_EQ(p.b[0], 2.f);
    p.zero();
    EXPECT_DOUBLE_EQ(p.squaredNorm(), 0.0);
}

TEST(MemNnModel, ForwardProducesFiniteLogits)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            1);
    MemNnModel model(tinyConfig(vocab.size(), 1), 2);
    const data::Example ex = gen.generate(6);
    ForwardState state;
    model.forward(ex, state);
    EXPECT_EQ(state.logits.size(), vocab.size());
    for (float v : state.logits)
        ASSERT_TRUE(std::isfinite(v));
    EXPECT_EQ(state.ns, 6u);
}

TEST(MemNnModel, AttentionIsANormalizedDistribution)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            2);
    MemNnModel model(tinyConfig(vocab.size(), 2), 3);
    const data::Example ex = gen.generate(8);
    ForwardState state;
    model.forward(ex, state);
    for (size_t h = 0; h < 2; ++h) {
        double total = 0.0;
        for (float p : state.p[h]) {
            ASSERT_GE(p, 0.f);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-5);
    }
}

TEST(MemNnModel, LossIsPositiveAndFinite)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 3);
    MemNnModel model(tinyConfig(vocab.size(), 1), 4);
    const data::Example ex = gen.generate(5);
    ForwardState state;
    model.forward(ex, state);
    const double loss = model.loss(state, ex.answer);
    EXPECT_GT(loss, 0.0);
    EXPECT_TRUE(std::isfinite(loss));
}

class GradCheck : public ::testing::TestWithParam<size_t>
{};

TEST_P(GradCheck, AnalyticMatchesNumeric)
{
    const size_t hops = GetParam();
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            5);
    MemNnModel model(tinyConfig(vocab.size(), hops), 6);
    const data::Example ex = gen.generate(5);

    const GradCheckResult result =
        checkGradients(model, ex, /*probes_per_tensor=*/12,
                       /*epsilon=*/1e-3);
    EXPECT_GT(result.probes, 0u);
    EXPECT_LT(result.maxRelativeError, 2e-2)
        << "gradient mismatch over " << result.probes << " probes";
}

INSTANTIATE_TEST_SUITE_P(Hops, GradCheck, ::testing::Values(1, 2, 3));

TEST(GradCheckNoTemporal, AnalyticMatchesNumeric)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::Counting, vocab, 7);
    ModelConfig cfg = tinyConfig(vocab.size(), 2);
    cfg.temporal = false;
    MemNnModel model(cfg, 8);
    const data::Example ex = gen.generate(5);
    const GradCheckResult result = checkGradients(model, ex, 10, 1e-3);
    EXPECT_LT(result.maxRelativeError, 2e-2);
}

TEST(Trainer, LossDecreasesOverTraining)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            9);
    const data::Dataset set = gen.generateSet(100, 6);

    ModelConfig mc = tinyConfig(vocab.size(), 1);
    mc.embeddingDim = 16;
    MemNnModel model(mc, 10);

    ForwardState state;
    double initial_loss = 0.0;
    for (const auto &ex : set.examples) {
        model.forward(ex, state);
        initial_loss += model.loss(state, ex.answer);
    }
    initial_loss /= set.size();

    TrainConfig tc;
    tc.epochs = 10;
    tc.learningRate = 0.05f;
    const TrainResult result = trainModel(model, set, tc);

    EXPECT_LT(result.finalLoss, initial_loss * 0.8);
    EXPECT_EQ(result.epochsRun, 10u);
}

TEST(Trainer, LearnsSingleSupportingFactTask)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            11);
    const data::Dataset train_set = gen.generateSet(400, 6);
    const data::Dataset test_set = gen.generateSet(100, 6);

    ModelConfig mc = tinyConfig(vocab.size(), 2);
    mc.embeddingDim = 20;
    MemNnModel model(mc, 12);

    TrainConfig tc;
    tc.epochs = 25;
    tc.learningRate = 0.03f;
    trainModel(model, train_set, tc);

    const double acc = evaluateAccuracy(model, test_set);
    // Eight candidate locations -> chance is 12.5%. A trained model
    // must do far better.
    EXPECT_GT(acc, 0.6) << "test accuracy " << acc;
}

TEST(Trainer, ParallelEvaluationMatchesSequential)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            31);
    const data::Dataset set = gen.generateSet(120, 7);
    MemNnModel model(tinyConfig(vocab.size(), 2), 32);

    const double seq = evaluateAccuracy(model, set);
    for (size_t threads : {size_t(0), size_t(1), size_t(3)}) {
        runtime::ThreadPool pool(threads);
        EXPECT_DOUBLE_EQ(evaluateAccuracy(model, set, pool), seq)
            << "threads=" << threads;
    }
}

TEST(Trainer, ParallelEvaluationOfEmptySetIsZero)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 33);
    MemNnModel model(tinyConfig(vocab.size(), 1), 34);
    const data::Dataset empty;
    runtime::ThreadPool pool(2);
    EXPECT_EQ(evaluateAccuracy(model, empty, pool), 0.0);
}

TEST(Trainer, ZeroThresholdSkipMatchesPlainForward)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 13);
    MemNnModel model(tinyConfig(vocab.size(), 1), 14);
    const data::Example ex = gen.generate(6);

    ForwardState plain, skip;
    model.forward(ex, plain);
    uint64_t kept = 0, total = 0;
    model.forwardSkip(ex, 0.f, skip, kept, total);
    ASSERT_EQ(plain.logits.size(), skip.logits.size());
    for (size_t i = 0; i < plain.logits.size(); ++i)
        ASSERT_FLOAT_EQ(plain.logits[i], skip.logits[i]);
    EXPECT_EQ(kept, total);
}

TEST(Trainer, SkippingReducesKeptRows)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            15);
    const data::Dataset set = gen.generateSet(200, 10);

    ModelConfig mc = tinyConfig(vocab.size(), 1);
    mc.embeddingDim = 16;
    MemNnModel model(mc, 16);
    TrainConfig tc;
    tc.epochs = 15;
    tc.learningRate = 0.05f;
    trainModel(model, set, tc);

    uint64_t kept_low = 0, total_low = 0;
    evaluateAccuracySkip(model, set, 0.01f, kept_low, total_low);
    uint64_t kept_high = 0, total_high = 0;
    evaluateAccuracySkip(model, set, 0.1f, kept_high, total_high);

    EXPECT_EQ(total_low, total_high);
    EXPECT_LE(kept_high, kept_low);
    // A trained attention is sparse: the 0.1 threshold must skip a
    // large majority of the rows (paper Fig. 7: ~97% reduction).
    EXPECT_LT(double(kept_high) / double(total_high), 0.5);
}

TEST(Trainer, StoryLongerThanMaxStoryPanics)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 17);
    ModelConfig cfg = tinyConfig(vocab.size(), 1);
    cfg.maxStory = 4;
    MemNnModel model(cfg, 18);
    const data::Example ex = gen.generate(8);
    ForwardState state;
    EXPECT_DEATH(model.forward(ex, state), "maxStory");
}

TEST(Trainer, EmptyDatasetIsFatal)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 19);
    MemNnModel model(tinyConfig(vocab.size(), 1), 20);
    const data::Dataset empty;
    TrainConfig tc;
    EXPECT_EXIT(trainModel(model, empty, tc),
                ::testing::ExitedWithCode(1), "empty");
}

} // namespace
} // namespace mnnfast::train
