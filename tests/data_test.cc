/**
 * @file
 * Tests for the data substrate: vocabulary, Zipf sampling, BoW
 * canonicalization, and the synthetic bAbI task generators (including
 * semantic answer-consistency checks that re-derive the answer from
 * the generated story text).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/babi.hh"
#include "data/bow.hh"
#include "data/vocabulary.hh"
#include "data/zipf.hh"

namespace mnnfast::data {
namespace {

TEST(Vocabulary, AssignsDenseIdsInInsertionOrder)
{
    Vocabulary v;
    EXPECT_EQ(v.add("apple"), 0u);
    EXPECT_EQ(v.add("banana"), 1u);
    EXPECT_EQ(v.add("apple"), 0u); // idempotent
    EXPECT_EQ(v.size(), 2u);
}

TEST(Vocabulary, LookupAndContains)
{
    Vocabulary v;
    v.add("word");
    EXPECT_EQ(v.lookup("word"), 0u);
    EXPECT_EQ(v.lookup("missing"), kNoWord);
    EXPECT_TRUE(v.contains("word"));
    EXPECT_FALSE(v.contains("missing"));
}

TEST(Vocabulary, WordOfRoundTrips)
{
    Vocabulary v;
    const WordId id = v.add("roundtrip");
    EXPECT_EQ(v.wordOf(id), "roundtrip");
}

TEST(Vocabulary, WordOfOutOfRangePanics)
{
    Vocabulary v;
    EXPECT_DEATH(v.wordOf(5), "out of range");
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfGenerator z(100, 1.0, 1);
    double total = 0.0;
    for (size_t k = 0; k < z.items(); ++k)
        total += z.probability(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ProbabilityIsMonotoneDecreasing)
{
    ZipfGenerator z(50, 1.2, 2);
    for (size_t k = 1; k < z.items(); ++k)
        EXPECT_LT(z.probability(k), z.probability(k - 1));
}

TEST(Zipf, SamplingMatchesTheory)
{
    ZipfGenerator z(1000, 1.0, 3);
    const int n = 100000;
    std::map<size_t, int> counts;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample()];
    // Rank 0 should appear with roughly its theoretical mass.
    const double p0 = z.probability(0);
    EXPECT_NEAR(double(counts[0]) / n, p0, 0.01);
    // Head heavier than tail.
    EXPECT_GT(counts[0], counts.count(500) ? counts[500] : 0);
}

TEST(Zipf, SamplesAreInRange)
{
    ZipfGenerator z(10, 1.0, 4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z.sample(), 10u);
}

TEST(Zipf, UniformWhenExponentZero)
{
    ZipfGenerator z(4, 0.0, 5);
    for (size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(z.probability(k), 0.25, 1e-9);
}

TEST(BagOfWords, MergesDuplicatesSorted)
{
    const Sentence s = {5, 3, 5, 5, 1};
    const BagOfWords bow = toBagOfWords(s);
    ASSERT_EQ(bow.size(), 3u);
    EXPECT_EQ(bow[0], (BowTerm{1, 1}));
    EXPECT_EQ(bow[1], (BowTerm{3, 1}));
    EXPECT_EQ(bow[2], (BowTerm{5, 3}));
    EXPECT_EQ(bowTokenCount(bow), 5u);
}

TEST(BagOfWords, EmptySentence)
{
    EXPECT_TRUE(toBagOfWords({}).empty());
    EXPECT_EQ(bowTokenCount({}), 0u);
}

/// Fixture generating examples for every task family.
class BabiTasks : public ::testing::TestWithParam<TaskType>
{
  protected:
    Vocabulary vocab;
};

TEST_P(BabiTasks, GeneratesRequestedStoryLength)
{
    BabiGenerator gen(GetParam(), vocab, 7);
    for (size_t len : {2ul, 5ul, 20ul, 50ul}) {
        const Example ex = gen.generate(len);
        EXPECT_EQ(ex.story.size(), len);
        EXPECT_FALSE(ex.question.empty());
    }
}

TEST_P(BabiTasks, AnswerIsACandidate)
{
    BabiGenerator gen(GetParam(), vocab, 8);
    const auto &cands = gen.answerCandidates();
    for (int i = 0; i < 50; ++i) {
        const Example ex = gen.generate(12);
        EXPECT_NE(std::find(cands.begin(), cands.end(), ex.answer),
                  cands.end())
            << "answer '" << vocab.wordOf(ex.answer)
            << "' not in candidate set";
    }
}

TEST_P(BabiTasks, SupportingFactsAreValidIndices)
{
    BabiGenerator gen(GetParam(), vocab, 9);
    for (int i = 0; i < 50; ++i) {
        const Example ex = gen.generate(10);
        EXPECT_FALSE(ex.supportingFacts.empty() &&
                     GetParam() != TaskType::Counting)
            << "non-counting tasks must cite support";
        for (size_t f : ex.supportingFacts)
            EXPECT_LT(f, ex.story.size());
    }
}

TEST_P(BabiTasks, AllWordsAreInVocabulary)
{
    BabiGenerator gen(GetParam(), vocab, 10);
    const Example ex = gen.generate(15);
    for (const Sentence &s : ex.story)
        for (WordId w : s)
            EXPECT_LT(w, vocab.size());
    for (WordId w : ex.question)
        EXPECT_LT(w, vocab.size());
    EXPECT_LT(ex.answer, vocab.size());
}

TEST_P(BabiTasks, DeterministicForSameSeed)
{
    Vocabulary va, vb;
    BabiGenerator ga(GetParam(), va, 99);
    BabiGenerator gb(GetParam(), vb, 99);
    const Example a = ga.generate(10);
    const Example b = gb.generate(10);
    EXPECT_EQ(a.story, b.story);
    EXPECT_EQ(a.question, b.question);
    EXPECT_EQ(a.answer, b.answer);
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, BabiTasks,
    ::testing::ValuesIn(allTasks()),
    [](const ::testing::TestParamInfo<TaskType> &info) {
        std::string name = taskName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * Semantic check for the single-supporting-fact task: replay the
 * story's movement sentences and verify the cited fact really is the
 * actor's last move and names the answer location.
 */
TEST(BabiSemantics, SingleFactAnswerMatchesLastMove)
{
    Vocabulary vocab;
    BabiGenerator gen(TaskType::SingleSupportingFact, vocab, 31);
    const WordId went = vocab.lookup("went");

    for (int trial = 0; trial < 100; ++trial) {
        const Example ex = gen.generate(15);
        ASSERT_EQ(ex.supportingFacts.size(), 1u);
        const Sentence &fact = ex.story[ex.supportingFacts[0]];
        // Question is {where, is, actor}; fact is
        // {actor, went, to, the, location}.
        const WordId actor = ex.question[2];
        ASSERT_EQ(fact[0], actor);
        ASSERT_EQ(fact[1], went);
        EXPECT_EQ(fact.back(), ex.answer);
        // No later movement sentence for this actor exists.
        for (size_t i = ex.supportingFacts[0] + 1; i < ex.story.size();
             ++i) {
            const Sentence &s = ex.story[i];
            if (s.size() >= 2 && s[0] == actor && s[1] == went)
                FAIL() << "found a later move of the queried actor";
        }
    }
}

TEST(BabiSemantics, YesNoAnswersAreConsistent)
{
    Vocabulary vocab;
    BabiGenerator gen(TaskType::YesNo, vocab, 32);
    const WordId yes = vocab.lookup("yes");
    const WordId no = vocab.lookup("no");
    int yes_count = 0, no_count = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const Example ex = gen.generate(12);
        ASSERT_TRUE(ex.answer == yes || ex.answer == no);
        // Question: {is, actor, in, the, location}; the supporting
        // fact names the actor's true location.
        const Sentence &fact = ex.story[ex.supportingFacts[0]];
        const WordId true_loc = fact.back();
        const WordId asked_loc = ex.question.back();
        EXPECT_EQ(ex.answer == yes, true_loc == asked_loc);
        (ex.answer == yes ? yes_count : no_count)++;
    }
    // Both outcomes must actually occur.
    EXPECT_GT(yes_count, 10);
    EXPECT_GT(no_count, 10);
}

TEST(BabiSemantics, NegationAnswerFollowsLatestFactPolarity)
{
    Vocabulary vocab;
    BabiGenerator gen(TaskType::Negation, vocab, 41);
    const WordId yes = vocab.lookup("yes");
    const WordId no = vocab.lookup("no");
    const WordId not_id = vocab.lookup("not");

    int yes_count = 0, no_count = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const Example ex = gen.generate(12);
        ASSERT_EQ(ex.supportingFacts.size(), 1u);
        const Sentence &fact = ex.story[ex.supportingFacts[0]];
        const bool negative =
            std::find(fact.begin(), fact.end(), not_id) != fact.end();
        EXPECT_EQ(ex.answer, negative ? no : yes);
        // The question names the fact's actor and location.
        EXPECT_EQ(ex.question[1], fact[0]);
        EXPECT_EQ(ex.question.back(), fact.back());
        // No later fact about this actor exists.
        for (size_t i = ex.supportingFacts[0] + 1; i < ex.story.size();
             ++i)
            EXPECT_NE(ex.story[i][0], fact[0]);
        (ex.answer == yes ? yes_count : no_count)++;
    }
    EXPECT_GT(yes_count, 20);
    EXPECT_GT(no_count, 20);
}

TEST(BabiSemantics, ConjunctionMovesBothActors)
{
    Vocabulary vocab;
    BabiGenerator gen(TaskType::Conjunction, vocab, 42);
    const WordId and_id = vocab.lookup("and");

    int joint_supports = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const Example ex = gen.generate(12);
        ASSERT_EQ(ex.supportingFacts.size(), 1u);
        const Sentence &fact = ex.story[ex.supportingFacts[0]];
        // The supporting fact mentions the queried actor and names
        // the answer location.
        const WordId actor = ex.question[2];
        EXPECT_TRUE(fact[0] == actor
                    || (fact.size() >= 3 && fact[1] == and_id
                        && fact[2] == actor));
        EXPECT_EQ(fact.back(), ex.answer);
        // No later sentence moves this actor.
        for (size_t i = ex.supportingFacts[0] + 1; i < ex.story.size();
             ++i) {
            const Sentence &s = ex.story[i];
            EXPECT_FALSE(s[0] == actor
                         || (s.size() >= 3 && s[1] == and_id
                             && s[2] == actor))
                << "later move at " << i;
        }
        joint_supports +=
            std::find(fact.begin(), fact.end(), and_id) != fact.end();
    }
    // Joint moves must actually occur as supporting facts.
    EXPECT_GT(joint_supports, 20);
}

TEST(BabiGenerator, GenerateSetProducesDistinctExamples)
{
    Vocabulary vocab;
    BabiGenerator gen(TaskType::SingleSupportingFact, vocab, 33);
    const Dataset set = gen.generateSet(20, 8);
    EXPECT_EQ(set.size(), 20u);
    std::set<Sentence> first_sentences;
    for (const Example &ex : set.examples)
        first_sentences.insert(ex.story[0]);
    EXPECT_GT(first_sentences.size(), 1u);
}

TEST(BabiGenerator, SharedVocabularyAcrossTasks)
{
    Vocabulary vocab;
    BabiGenerator g1(TaskType::SingleSupportingFact, vocab, 1);
    const size_t after_first = vocab.size();
    BabiGenerator g2(TaskType::Counting, vocab, 2);
    // Same entity/action words: no duplicate inserts.
    EXPECT_EQ(vocab.size(), after_first);
}

} // namespace
} // namespace mnnfast::data
