/**
 * @file
 * Cluster networking tests (DESIGN.md §12): wire-format bit-exact
 * round trips and defensive decoding, loopback fault injection
 * (seeded determinism, loss, reorder, disconnect, per-endpoint
 * overrides), the real TCP transport over localhost (reassembly
 * across recv timeouts, corrupt-stream handling), the ShardNode serve
 * loop, and the ClusterFrontEnd guarantees: lossless gather
 * bit-identical to ShardedEngine across shard counts x precisions,
 * replica failover, hedged requests around a straggling primary, and
 * the explicit partial-answer policy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/knowledge_base.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "net/cluster_frontend.hh"
#include "net/loopback_transport.hh"
#include "net/shard_node.hh"
#include "net/tcp_transport.hh"
#include "net/wire.hh"
#include "serve/live_server.hh"
#include "util/rng.hh"

namespace mnnfast {
namespace {

using net::ClusterConfig;
using net::ClusterFrontEnd;
using net::FaultSpec;
using net::Frame;
using net::FrameType;
using net::LoopbackNetwork;
using net::LoopbackTransport;
using net::RecvStatus;
using net::ShardNode;
using net::WireStatus;

uint32_t
f32Bits(float v)
{
    uint32_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

uint64_t
f64Bits(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

// ---------------------------------------------------------------
// Wire format: bit-exact round trips
// ---------------------------------------------------------------

TEST(Wire, Crc32MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32 check vector.
    const char *s = "123456789";
    EXPECT_EQ(net::crc32(reinterpret_cast<const uint8_t *>(s), 9),
              0xCBF43926u);
    EXPECT_EQ(net::crc32(nullptr, 0), 0u);
}

TEST(Wire, ScatterRequestRoundTripIsBitExact)
{
    net::ScatterRequest req;
    req.requestId = 0x0123456789ABCDEFull;
    req.shard = 7;
    req.nq = 2;
    req.ed = 3;
    // Adversarial IEEE-754 values: the round trip must preserve the
    // exact bit patterns, not just approximate values.
    req.u = {-0.0f, std::numeric_limits<float>::quiet_NaN(),
             std::numeric_limits<float>::denorm_min(),
             -std::numeric_limits<float>::infinity(), 1.0f / 3.0f,
             std::numeric_limits<float>::max()};

    const Frame f = encodeScatterRequest(req);
    const std::vector<uint8_t> bytes = encodeFrame(f);

    Frame back;
    ASSERT_EQ(net::decodeFrame(bytes.data(), bytes.size(), back),
              WireStatus::Ok);
    net::ScatterRequest out;
    ASSERT_EQ(decodeScatterRequest(back, out), WireStatus::Ok);

    EXPECT_EQ(out.requestId, req.requestId);
    EXPECT_EQ(out.shard, req.shard);
    EXPECT_EQ(out.nq, req.nq);
    EXPECT_EQ(out.ed, req.ed);
    ASSERT_EQ(out.u.size(), req.u.size());
    for (size_t i = 0; i < req.u.size(); ++i)
        EXPECT_EQ(f32Bits(out.u[i]), f32Bits(req.u[i])) << "index " << i;
}

TEST(Wire, PartialResponseRoundTripIsBitExact)
{
    net::PartialResponse resp;
    resp.requestId = 42;
    resp.shard = 3;
    resp.nq = 2;
    resp.ed = 2;
    resp.partial.nq = 2;
    // -inf runMax is what plain (onlineNormalize off) engines emit.
    resp.partial.runMax = {-std::numeric_limits<float>::infinity(),
                           -0.0f};
    resp.partial.expSum = {1e-300, 6.02214076e23};
    resp.partial.o = {-0.0f, std::numeric_limits<float>::denorm_min(),
                      -1.5f, 2.25f};

    const std::vector<uint8_t> bytes =
        encodeFrame(encodePartialResponse(resp));
    Frame back;
    ASSERT_EQ(net::decodeFrame(bytes.data(), bytes.size(), back),
              WireStatus::Ok);
    net::PartialResponse out;
    ASSERT_EQ(decodePartialResponse(back, out), WireStatus::Ok);

    EXPECT_EQ(out.requestId, resp.requestId);
    EXPECT_EQ(out.shard, resp.shard);
    ASSERT_EQ(out.partial.runMax.size(), 2u);
    ASSERT_EQ(out.partial.expSum.size(), 2u);
    ASSERT_EQ(out.partial.o.size(), 4u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(f32Bits(out.partial.runMax[i]),
                  f32Bits(resp.partial.runMax[i]));
        EXPECT_EQ(f64Bits(out.partial.expSum[i]),
                  f64Bits(resp.partial.expSum[i]));
    }
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(f32Bits(out.partial.o[i]), f32Bits(resp.partial.o[i]));
}

// ---------------------------------------------------------------
// Wire format: defensive decoding
// ---------------------------------------------------------------

std::vector<uint8_t>
sampleFrameBytes()
{
    net::ScatterRequest req;
    req.requestId = 9;
    req.shard = 1;
    req.nq = 1;
    req.ed = 4;
    req.u = {1.f, 2.f, 3.f, 4.f};
    return encodeFrame(encodeScatterRequest(req));
}

TEST(Wire, RejectsCorruptedTruncatedAndMismatchedFrames)
{
    const std::vector<uint8_t> good = sampleFrameBytes();
    Frame out;
    ASSERT_EQ(net::decodeFrame(good.data(), good.size(), out),
              WireStatus::Ok);

    {
        std::vector<uint8_t> b = good; // flipped payload byte
        b[net::kHeaderBytes] ^= 0x01;
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadCrc);
    }
    {
        std::vector<uint8_t> b = good; // flipped CRC byte
        b[12] ^= 0x80;
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadCrc);
    }
    {
        const std::vector<uint8_t> &b = good; // truncated payload
        EXPECT_EQ(net::decodeFrame(b.data(), b.size() - 1, out),
                  WireStatus::Truncated);
        // Truncated inside the header.
        EXPECT_EQ(net::decodeFrame(b.data(), 7, out),
                  WireStatus::Truncated);
    }
    {
        std::vector<uint8_t> b = good; // wrong magic
        b[0] ^= 0xFF;
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadMagic);
    }
    {
        std::vector<uint8_t> b = good; // future version
        b[4] = 0xFE;
        b[5] = 0xCA;
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadVersion);
    }
    {
        std::vector<uint8_t> b = good; // unknown frame type
        b[6] = 0xEE;
        b[7] = 0xEE;
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadType);
    }
    {
        std::vector<uint8_t> b = good; // absurd length field
        b[8] = b[9] = b[10] = b[11] = 0xFF;
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadLength);
    }
    {
        std::vector<uint8_t> b = good; // trailing junk after payload
        b.push_back(0x00);
        EXPECT_EQ(net::decodeFrame(b.data(), b.size(), out),
                  WireStatus::BadLength);
    }
}

TEST(Wire, RejectsInteriorInconsistencies)
{
    // Patch the payload's nq field so the interior disagrees with the
    // payload size, and re-stamp the CRC so only the message decoder
    // can catch it.
    std::vector<uint8_t> b = sampleFrameBytes();
    b[net::kHeaderBytes + 12] = 0x07; // nq: 1 -> 7
    const uint32_t crc = net::crc32(b.data() + net::kHeaderBytes,
                                    b.size() - net::kHeaderBytes);
    for (int i = 0; i < 4; ++i)
        b[12 + i] = uint8_t((crc >> (8 * i)) & 0xff);

    Frame f;
    ASSERT_EQ(net::decodeFrame(b.data(), b.size(), f), WireStatus::Ok);
    net::ScatterRequest req;
    EXPECT_EQ(decodeScatterRequest(f, req), WireStatus::Malformed);

    // A decoder fed the wrong frame type refuses outright.
    net::PartialResponse resp;
    EXPECT_EQ(decodePartialResponse(f, resp), WireStatus::BadType);
}

// ---------------------------------------------------------------
// Loopback transport: delivery, determinism, faults
// ---------------------------------------------------------------

Frame
taggedFrame(uint64_t tag)
{
    net::ScatterRequest req;
    req.requestId = tag;
    req.shard = 0;
    req.nq = 1;
    req.ed = 1;
    req.u = {1.0f};
    return encodeScatterRequest(req);
}

uint64_t
frameTag(const Frame &f)
{
    net::ScatterRequest req;
    EXPECT_EQ(decodeScatterRequest(f, req), WireStatus::Ok);
    return req.requestId;
}

TEST(LoopbackTransport, DeliversFramesBothWaysAndClosesLikeASocket)
{
    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    auto listener = t.listen("node");
    ASSERT_TRUE(listener);
    auto client = t.connect("node", net::deadlineIn(1.0));
    ASSERT_TRUE(client);
    auto server = listener->accept(net::deadlineIn(1.0));
    ASSERT_TRUE(server);

    ASSERT_TRUE(client->send(taggedFrame(7)));
    Frame f;
    ASSERT_EQ(server->recv(f, net::deadlineIn(1.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 7u);
    ASSERT_TRUE(server->send(taggedFrame(8)));
    ASSERT_EQ(client->recv(f, net::deadlineIn(1.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 8u);

    // Closing one side breaks both directions.
    client->close();
    EXPECT_FALSE(server->send(taggedFrame(9)));
    EXPECT_EQ(server->recv(f, net::deadlineIn(0.05)),
              RecvStatus::Closed);

    // Unregistered endpoints are unreachable.
    EXPECT_EQ(t.connect("nowhere", net::deadlineIn(0.01)), nullptr);
}

std::vector<net::FaultEvent>
faultScheduleFor(uint64_t seed, const FaultSpec &spec, size_t sends)
{
    LoopbackNetwork netns;
    LoopbackTransport t(netns, spec, seed);
    auto listener = t.listen("n");
    auto client = t.connect("n", net::deadlineIn(1.0));
    auto server = listener->accept(net::deadlineIn(1.0));
    EXPECT_TRUE(client && server);
    auto *ch = static_cast<net::LoopbackChannel *>(client.get());
    for (size_t i = 0; i < sends; ++i)
        if (!client->send(taggedFrame(i)))
            break; // an injected disconnect ends the stream
    return ch->faultLog();
}

TEST(LoopbackTransport, SameSeedReplaysTheExactFaultSchedule)
{
    FaultSpec spec;
    spec.baseLatencySeconds = 1e-4;
    spec.jitterSeconds = 5e-4;
    spec.lossProb = 0.2;
    spec.stragglerProb = 0.1;
    spec.stragglerLatencySeconds = 2e-3;

    const auto a = faultScheduleFor(1234, spec, 64);
    const auto b = faultScheduleFor(1234, spec, 64);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 64u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].delaySeconds, b[i].delaySeconds); // bit-equal
        EXPECT_EQ(a[i].dropped, b[i].dropped);
        EXPECT_EQ(a[i].disconnected, b[i].disconnected);
    }

    // A different seed yields a different schedule (overwhelmingly).
    const auto c = faultScheduleFor(99, spec, 64);
    bool identical = c.size() == a.size();
    for (size_t i = 0; identical && i < a.size(); ++i)
        identical = a[i].delaySeconds == c[i].delaySeconds
                    && a[i].dropped == c[i].dropped;
    EXPECT_FALSE(identical);
}

TEST(LoopbackTransport, LossAndStragglersMatchTheLoggedSchedule)
{
    // Two well-separated delay classes (0 vs 100 ms) rather than
    // uniform jitter: predicting the delivery order from the logged
    // delays is only sound when the injected delays dwarf the send
    // loop's own duration, and 100 ms stays sound even under
    // sanitizer-slowed sends where a few-ms jitter window does not.
    FaultSpec spec;
    spec.stragglerProb = 0.3;
    spec.stragglerLatencySeconds = 0.1; // forces reordering
    spec.lossProb = 0.3;

    LoopbackNetwork netns;
    LoopbackTransport t(netns, spec, 77);
    auto listener = t.listen("n");
    auto client = t.connect("n", net::deadlineIn(1.0));
    auto server = listener->accept(net::deadlineIn(1.0));
    ASSERT_TRUE(client && server);

    const size_t sends = 32;
    for (size_t i = 0; i < sends; ++i)
        ASSERT_TRUE(client->send(taggedFrame(i)));

    const auto log =
        static_cast<net::LoopbackChannel *>(client.get())->faultLog();
    ASSERT_EQ(log.size(), sends);

    // Predict the delivery order: surviving messages sorted by
    // (delay, seq) — the loopback's (deliverAt, seq) with a common
    // send instant (the whole send loop runs in a few ms, far inside
    // the 100 ms separation between the two delay classes).
    std::vector<const net::FaultEvent *> expect;
    for (const auto &ev : log)
        if (!ev.dropped)
            expect.push_back(&ev);
    std::stable_sort(expect.begin(), expect.end(),
                     [](const net::FaultEvent *a,
                        const net::FaultEvent *b) {
                         if (a->delaySeconds != b->delaySeconds)
                             return a->delaySeconds < b->delaySeconds;
                         return a->seq < b->seq;
                     });
    ASSERT_GT(expect.size(), 0u);
    ASSERT_LT(expect.size(), sends); // some were actually lost

    Frame f;
    std::vector<uint64_t> got;
    while (server->recv(f, net::deadlineIn(0.25)) == RecvStatus::Ok)
        got.push_back(frameTag(f));
    ASSERT_EQ(got.size(), expect.size()); // lost stay lost
    bool reordered = false;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expect[i]->seq) << "delivery position " << i;
        if (i > 0 && got[i] < got[i - 1])
            reordered = true;
    }
    EXPECT_TRUE(reordered); // stragglers actually shuffled the stream
}

TEST(LoopbackTransport, DisconnectBreaksBothDirectionsAndDropsInFlight)
{
    FaultSpec slow; // in-flight messages to discard
    slow.baseLatencySeconds = 0.2;

    LoopbackNetwork netns;
    LoopbackTransport t(netns, slow, 5);
    auto listener = t.listen("n");
    auto client = t.connect("n", net::deadlineIn(1.0));
    auto server = listener->accept(net::deadlineIn(1.0));
    ASSERT_TRUE(client && server);

    // Queue one slow in-flight message, then force a disconnect on
    // the next send by overriding the spec via a second connection
    // path: simplest is a spec with disconnectProb = 1 from the
    // start, so use a dedicated pair for the disconnect itself.
    ASSERT_TRUE(client->send(taggedFrame(1)));

    FaultSpec broken;
    broken.disconnectProb = 1.0;
    LoopbackTransport t2(netns, broken, 6);
    auto client2 = t2.connect("n", net::deadlineIn(1.0));
    auto server2 = listener->accept(net::deadlineIn(1.0));
    ASSERT_TRUE(client2 && server2);
    EXPECT_FALSE(client2->send(taggedFrame(2))); // injected break
    Frame f;
    EXPECT_EQ(server2->recv(f, net::deadlineIn(0.05)),
              RecvStatus::Closed);
    EXPECT_FALSE(server2->send(taggedFrame(3)));

    // The first connection is untouched and still delivers.
    EXPECT_EQ(server->recv(f, net::deadlineIn(1.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 1u);
}

TEST(LoopbackTransport, EndpointOverridesScopeFaultsToOneReplica)
{
    LoopbackNetwork netns;
    LoopbackTransport t(netns); // lossless default
    FaultSpec lossy;
    lossy.lossProb = 1.0;
    t.setEndpointFaults("bad", lossy);

    auto goodListener = t.listen("good");
    auto badListener = t.listen("bad");
    auto goodClient = t.connect("good", net::deadlineIn(1.0));
    auto badClient = t.connect("bad", net::deadlineIn(1.0));
    auto goodServer = goodListener->accept(net::deadlineIn(1.0));
    auto badServer = badListener->accept(net::deadlineIn(1.0));
    ASSERT_TRUE(goodClient && badClient && goodServer && badServer);

    Frame f;
    ASSERT_TRUE(goodClient->send(taggedFrame(1)));
    EXPECT_EQ(goodServer->recv(f, net::deadlineIn(1.0)),
              RecvStatus::Ok);
    ASSERT_TRUE(badClient->send(taggedFrame(2))); // vanishes
    EXPECT_EQ(badServer->recv(f, net::deadlineIn(0.05)),
              RecvStatus::Timeout);
}

// ---------------------------------------------------------------
// TCP transport over localhost
// ---------------------------------------------------------------

TEST(TcpTransport, RoundTripsFramesOverAnEphemeralPort)
{
    net::TcpTransport t;
    auto listener = t.listen("127.0.0.1:0");
    ASSERT_TRUE(listener);
    const uint16_t port =
        static_cast<net::TcpListener *>(listener.get())->boundPort();
    ASSERT_NE(port, 0);

    const std::string ep = "127.0.0.1:" + std::to_string(port);
    auto client = t.connect(ep, net::deadlineIn(2.0));
    ASSERT_TRUE(client);
    auto server = listener->accept(net::deadlineIn(2.0));
    ASSERT_TRUE(server);

    ASSERT_TRUE(client->send(taggedFrame(21)));
    Frame f;
    ASSERT_EQ(server->recv(f, net::deadlineIn(2.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 21u);
    ASSERT_TRUE(server->send(taggedFrame(22)));
    ASSERT_EQ(client->recv(f, net::deadlineIn(2.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 22u);

    client->close();
    EXPECT_EQ(server->recv(f, net::deadlineIn(2.0)),
              RecvStatus::Closed);
}

TEST(TcpTransport, RejectsBadEndpointsAndDeadConnects)
{
    net::TcpTransport t;
    EXPECT_EQ(t.listen("not-an-endpoint"), nullptr);
    EXPECT_EQ(t.listen("127.0.0.1"), nullptr);
    EXPECT_EQ(t.connect("127.0.0.1:notaport", net::deadlineIn(0.1)),
              nullptr);

    // A port nothing listens on refuses promptly on loopback.
    auto probe = t.listen("127.0.0.1:0");
    ASSERT_TRUE(probe);
    const uint16_t dead =
        static_cast<net::TcpListener *>(probe.get())->boundPort();
    probe->close();
    EXPECT_EQ(t.connect("127.0.0.1:" + std::to_string(dead),
                        net::deadlineIn(0.5)),
              nullptr);
}

/** Raw byte-level client for stream-splitting and garbage tests. */
int
rawConnect(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    return fd;
}

TEST(TcpTransport, RecvTimeoutMidFrameResumesWithoutDesync)
{
    net::TcpTransport t;
    auto listener = t.listen("127.0.0.1:0");
    ASSERT_TRUE(listener);
    const uint16_t port =
        static_cast<net::TcpListener *>(listener.get())->boundPort();
    const int fd = rawConnect(port);
    auto server = listener->accept(net::deadlineIn(2.0));
    ASSERT_TRUE(server);

    const std::vector<uint8_t> bytes = sampleFrameBytes();
    // First half of the frame (splitting inside the header)...
    ASSERT_EQ(::send(fd, bytes.data(), 10, 0), 10);
    Frame f;
    EXPECT_EQ(server->recv(f, net::deadlineIn(0.05)),
              RecvStatus::Timeout);
    // ...then the rest: the reassembly state must have survived.
    const size_t rest = bytes.size() - 10;
    ASSERT_EQ(::send(fd, bytes.data() + 10, rest, 0),
              static_cast<ssize_t>(rest));
    ASSERT_EQ(server->recv(f, net::deadlineIn(2.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 9u); // sampleFrameBytes tags requestId 9

    // And the stream is still in sync for a second, unsplit frame.
    const std::vector<uint8_t> again =
        encodeFrame(taggedFrame(33));
    ASSERT_EQ(::send(fd, again.data(), again.size(), 0),
              static_cast<ssize_t>(again.size()));
    ASSERT_EQ(server->recv(f, net::deadlineIn(2.0)), RecvStatus::Ok);
    EXPECT_EQ(frameTag(f), 33u);
    ::close(fd);
}

TEST(TcpTransport, GarbageBytesSurfaceAsCorrupt)
{
    net::TcpTransport t;
    auto listener = t.listen("127.0.0.1:0");
    ASSERT_TRUE(listener);
    const uint16_t port =
        static_cast<net::TcpListener *>(listener.get())->boundPort();
    const int fd = rawConnect(port);
    auto server = listener->accept(net::deadlineIn(2.0));
    ASSERT_TRUE(server);

    uint8_t junk[net::kHeaderBytes];
    std::memset(junk, 0xAB, sizeof junk);
    ASSERT_EQ(::send(fd, junk, sizeof junk, 0),
              static_cast<ssize_t>(sizeof junk));
    Frame f;
    EXPECT_EQ(server->recv(f, net::deadlineIn(2.0)),
              RecvStatus::Corrupt);
    ::close(fd);
}

// ---------------------------------------------------------------
// ShardNode + ClusterFrontEnd
// ---------------------------------------------------------------

core::KnowledgeBase
makeKb(size_t ns, size_t ed,
       core::Precision prec = core::Precision::F32, uint64_t seed = 11)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(seed);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

std::vector<float>
makeQuestions(size_t nq, size_t ed, uint64_t seed = 23)
{
    XorShiftRng rng(seed);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-1.f, 1.f);
    return u;
}

/** Shard nodes serving on loopback endpoints, one thread each. */
class NodeSet
{
  public:
    void
    add(const core::KnowledgeBase &shard_kb,
        const core::EngineConfig &cfg, uint32_t shard,
        net::Transport &transport, const std::string &endpoint)
    {
        auto listener = transport.listen(endpoint);
        ASSERT_TRUE(listener) << "endpoint " << endpoint;
        nodes.push_back(
            std::make_unique<ShardNode>(shard_kb, cfg, shard));
        ShardNode *node = nodes.back().get();
        threads.emplace_back(
            [node, l = std::move(listener)]() mutable {
                node->serve(*l);
            });
    }

    void
    stop()
    {
        for (auto &n : nodes)
            n->requestStop();
        for (auto &t : threads)
            t.join();
        threads.clear();
    }

    ~NodeSet() { stop(); }

    std::vector<std::unique_ptr<ShardNode>> nodes;
    std::vector<std::thread> threads;
};

TEST(ShardNode, StopsOnShutdownFrameAndRefusesMiswiredRequests)
{
    const size_t ns = 256, ed = 8, nq = 2;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = 64;

    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(kb, cfg, /*shard=*/0, t, "node0");

    // A wrong shard index closes the connection, answering nothing.
    {
        auto ch = t.connect("node0", net::deadlineIn(1.0));
        ASSERT_TRUE(ch);
        net::ScatterRequest req;
        req.requestId = 1;
        req.shard = 5; // not this node
        req.nq = nq;
        req.ed = ed;
        req.u = makeQuestions(nq, ed);
        ASSERT_TRUE(ch->send(encodeScatterRequest(req)));
        Frame f;
        EXPECT_EQ(ch->recv(f, net::deadlineIn(2.0)),
                  RecvStatus::Closed);
    }

    // The right shard index answers with a matching response.
    {
        auto ch = t.connect("node0", net::deadlineIn(1.0));
        ASSERT_TRUE(ch);
        net::ScatterRequest req;
        req.requestId = 2;
        req.shard = 0;
        req.nq = nq;
        req.ed = ed;
        req.u = makeQuestions(nq, ed);
        ASSERT_TRUE(ch->send(encodeScatterRequest(req)));
        Frame f;
        ASSERT_EQ(ch->recv(f, net::deadlineIn(5.0)), RecvStatus::Ok);
        net::PartialResponse resp;
        ASSERT_EQ(decodePartialResponse(f, resp), WireStatus::Ok);
        EXPECT_EQ(resp.requestId, 2u);
        EXPECT_EQ(resp.shard, 0u);
        EXPECT_EQ(resp.nq, nq);
        EXPECT_EQ(set.nodes[0]->requestsServed(), 1u);
    }

    // A Shutdown frame stops the serve loop entirely.
    {
        auto ch = t.connect("node0", net::deadlineIn(1.0));
        ASSERT_TRUE(ch);
        ASSERT_TRUE(ch->send(Frame{FrameType::Shutdown, {}}));
    }
    set.stop(); // joins: hangs here if Shutdown did not land
}

/**
 * The cluster acceptance guarantee: over a lossless loopback with
 * every node answering, ClusterFrontEnd output is bit-identical to
 * the in-process ShardedEngine across shard counts x precisions x
 * merge algebra.
 */
TEST(ClusterFrontEnd, LosslessGatherBitIdenticalToShardedEngine)
{
    const size_t ns = 700, ed = 16, nq = 5, chunk = 64;
    const std::vector<float> u = makeQuestions(nq, ed);

    for (core::Precision prec :
         {core::Precision::F32, core::Precision::BF16,
          core::Precision::I8}) {
        const core::KnowledgeBase kb = makeKb(ns, ed, prec);
        for (bool online : {false, true}) {
            for (size_t shards : {size_t(2), size_t(4)}) {
                core::EngineConfig cfg;
                cfg.chunkSize = chunk;
                cfg.onlineNormalize = online;

                const core::ShardedKnowledgeBase skb(kb, chunk,
                                                     shards);
                core::ShardedEngine reference(skb, cfg);
                std::vector<float> expect(nq * ed);
                reference.inferBatch(u.data(), nq, expect.data());

                LoopbackNetwork netns;
                LoopbackTransport t(netns);
                NodeSet set;
                ClusterConfig ccfg;
                ccfg.onlineNormalize = online;
                ccfg.requestTimeoutSeconds = 30.0; // sanitizer slack
                for (size_t s = 0; s < skb.shardCount(); ++s) {
                    const std::string ep =
                        "shard" + std::to_string(s);
                    set.add(skb.shard(s), cfg,
                            static_cast<uint32_t>(s), t, ep);
                    ccfg.replicas.push_back({ep});
                }

                ClusterFrontEnd fe(t, ccfg);
                std::vector<float> got(nq * ed, -1.f);
                const net::BatchResult r =
                    fe.inferBatch(u.data(), nq, ed, got.data());
                EXPECT_TRUE(r.complete);
                EXPECT_EQ(r.shardsAnswered, skb.shardCount());
                for (size_t i = 0; i < got.size(); ++i)
                    ASSERT_EQ(f32Bits(got[i]), f32Bits(expect[i]))
                        << "prec=" << int(prec)
                        << " online=" << online
                        << " shards=" << shards << " i=" << i;
            }
        }
    }
}

TEST(ClusterFrontEnd, FailsOverToTheReplicaOnDisconnects)
{
    const size_t ns = 512, ed = 8, nq = 3, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const std::vector<float> u = makeQuestions(nq, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    ASSERT_EQ(skb.shardCount(), 2u);
    core::ShardedEngine reference(skb, cfg);
    std::vector<float> expect(nq * ed);
    reference.inferBatch(u.data(), nq, expect.data());

    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    // Shard 0's primary replica breaks every connection on first use;
    // the backup replica is clean.
    FaultSpec broken;
    broken.disconnectProb = 1.0;
    t.setEndpointFaults("s0-primary", broken);

    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0-primary");
    set.add(skb.shard(0), cfg, 0, t, "s0-backup");
    set.add(skb.shard(1), cfg, 1, t, "s1");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0-primary", "s0-backup"}, {"s1"}};
    ccfg.requestTimeoutSeconds = 30.0;
    ClusterFrontEnd fe(t, ccfg);

    std::vector<float> got(nq * ed);
    const net::BatchResult r =
        fe.inferBatch(u.data(), nq, ed, got.data());
    ASSERT_TRUE(r.complete);
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(f32Bits(got[i]), f32Bits(expect[i])) << "i=" << i;

    const serve::LatencySnapshot snap = fe.snapshot();
    ASSERT_EQ(snap.rpcShards.size(), 2u);
    EXPECT_GE(snap.rpcShards[0].failovers, 1u);
    EXPECT_EQ(snap.partialAnswers, 0u);
}

TEST(ClusterFrontEnd, HedgesAroundAStragglingPrimary)
{
    const size_t ns = 512, ed = 8, nq = 3, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const std::vector<float> u = makeQuestions(nq, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    core::ShardedEngine reference(skb, cfg);
    std::vector<float> expect(nq * ed);
    reference.inferBatch(u.data(), nq, expect.data());

    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    // Every message to/from shard 0's primary straggles hard; the
    // hedge replica answers instantly.
    FaultSpec straggling;
    straggling.stragglerProb = 1.0;
    straggling.stragglerLatencySeconds = 0.5;
    t.setEndpointFaults("s0-slow", straggling);

    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0-slow");
    set.add(skb.shard(0), cfg, 0, t, "s0-fast");
    set.add(skb.shard(1), cfg, 1, t, "s1");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0-slow", "s0-fast"}, {"s1"}};
    ccfg.requestTimeoutSeconds = 30.0;
    ccfg.hedging = true;
    ccfg.hedgeMinSeconds = 0.005;
    ClusterFrontEnd fe(t, ccfg);

    std::vector<float> got(nq * ed);
    const net::BatchResult r =
        fe.inferBatch(u.data(), nq, ed, got.data());
    ASSERT_TRUE(r.complete);
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(f32Bits(got[i]), f32Bits(expect[i])) << "i=" << i;

    const serve::LatencySnapshot snap = fe.snapshot();
    EXPECT_GE(snap.rpcShards[0].hedgesFired, 1u);
    EXPECT_GE(snap.rpcShards[0].hedgeWins, 1u);
    EXPECT_EQ(snap.rpcShards[1].hedgesFired, 0u);
}

TEST(ClusterFrontEnd, PartialAnswerPolicyIsExplicit)
{
    const size_t ns = 512, ed = 8, nq = 3, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const std::vector<float> u = makeQuestions(nq, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");
    // Shard 1 has no living replica: "s1" is never registered.

    ClusterConfig base;
    base.replicas = {{"s0"}, {"s1"}};
    base.requestTimeoutSeconds = 0.3;

    {
        // Fail-closed (default): no merge, output untouched.
        ClusterConfig ccfg = base;
        ClusterFrontEnd fe(t, ccfg);
        std::vector<float> got(nq * ed, -7.5f);
        const net::BatchResult r =
            fe.inferBatch(u.data(), nq, ed, got.data());
        EXPECT_FALSE(r.complete);
        EXPECT_EQ(r.shardsAnswered, 0u);
        for (float x : got)
            EXPECT_EQ(x, -7.5f);
        const serve::LatencySnapshot snap = fe.snapshot();
        EXPECT_GE(snap.rpcShards[1].deadlineMisses, 1u);
        EXPECT_EQ(snap.partialAnswers, 0u);
    }
    {
        // allowPartial: merge what answered, flag it, count it.
        ClusterConfig ccfg = base;
        ccfg.allowPartial = true;
        ClusterFrontEnd fe(t, ccfg);
        std::vector<float> got(nq * ed, 0.f);
        const net::BatchResult r =
            fe.inferBatch(u.data(), nq, ed, got.data());
        EXPECT_FALSE(r.complete);
        EXPECT_EQ(r.shardsAnswered, 1u);
        EXPECT_EQ(r.shardMask, 0b01u);

        // The partial answer is exactly shard 0's normalized partial
        // — i.e. a single-shard gather.
        const core::ShardedKnowledgeBase solo(kb, chunk, 2);
        core::ColumnEngine engine0(solo.shard(0), [&] {
            core::EngineConfig c = cfg;
            c.scheduleGroups = 1;
            return c;
        }());
        core::StreamPartial part;
        engine0.inferPartial(u.data(), nq, part);
        const core::StreamPartial *pp = &part;
        std::vector<float> expect(nq * ed);
        core::mergeStreamPartials(&pp, 1, nq, ed, false,
                                  expect.data());
        for (size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(f32Bits(got[i]), f32Bits(expect[i]));

        const serve::LatencySnapshot snap = fe.snapshot();
        EXPECT_EQ(snap.partialAnswers, nq);
        EXPECT_GE(snap.rpcShards[1].deadlineMisses, 1u);
        // The JSON export carries the rpc block for cluster snapshots.
        const std::string json = snap.toJson();
        EXPECT_NE(json.find("\"rpc\""), std::string::npos);
        EXPECT_NE(json.find("\"partial_answers\": 3"),
                  std::string::npos);
        EXPECT_NE(json.find("\"deadline_misses\""), std::string::npos);
    }
}

TEST(ClusterFrontEnd, SnapshotHistogramRangeFollowsTheRequestTimeout)
{
    // Regression: snapshot() used to build its merge accumulator with
    // a hardcoded 1 s histogram range, so any batch slower than 1 s
    // clamped every latency quantile to 1.0 no matter how generous the
    // configured timeout was. The range now derives from
    // requestTimeoutSeconds x (pipelineDepth + 1).
    const size_t ns = 256, ed = 8, nq = 2, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    // Every message to/from the single shard straggles 0.6 s, so the
    // request + response round trip is >= 1.2 s — past the old 1 s
    // ceiling but well inside the 3 s timeout.
    FaultSpec slow;
    slow.stragglerProb = 1.0;
    slow.stragglerLatencySeconds = 0.6;
    t.setEndpointFaults("s0", slow);

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0"}};
    ccfg.requestTimeoutSeconds = 3.0;
    ClusterFrontEnd fe(t, ccfg);

    const std::vector<float> u = makeQuestions(nq, ed);
    std::vector<float> got(nq * ed);
    const net::BatchResult r =
        fe.inferBatch(u.data(), nq, ed, got.data());
    ASSERT_TRUE(r.complete);

    const serve::LatencySnapshot snap = fe.snapshot();
    ASSERT_EQ(snap.completed, 1u);
    EXPECT_GT(snap.endToEnd.p50, 1.05)
        << "a >1.2 s batch must not be clamped to the old 1 s range";
    EXPECT_LT(snap.endToEnd.p50, 6.1); // inside the derived range
}

TEST(ClusterFrontEnd, FailClosedBatchesAreCountedNotTimed)
{
    // Regression: a batch that failed closed used to be recorded into
    // the *success* latency histograms (its value pinned at the
    // deadline), silently dragging the reported tail to the timeout.
    // Failed batches now get their own counter and stay out of the
    // histograms entirely.
    const size_t ns = 256, ed = 8, nq = 3, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");
    // Shard 1 is dark: "s1" never gets a listener.

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0"}, {"s1"}};
    ccfg.requestTimeoutSeconds = 0.3;
    ClusterFrontEnd fe(t, ccfg);

    const std::vector<float> u = makeQuestions(nq, ed);
    std::vector<float> got(nq * ed, 0.f);
    const net::BatchResult r =
        fe.inferBatch(u.data(), nq, ed, got.data());
    EXPECT_FALSE(r.complete);
    EXPECT_EQ(r.shardsAnswered, 0u);
    EXPECT_EQ(r.shardMask, 0u);

    const serve::LatencySnapshot snap = fe.snapshot();
    EXPECT_EQ(snap.failedBatches, 1u);
    EXPECT_EQ(snap.completed, 0u); // not in the success histograms
    EXPECT_EQ(snap.batches, 0u);
    EXPECT_EQ(snap.endToEnd.count, 0u);
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"failed_batches\": 1"), std::string::npos);
}

// ---------------------------------------------------------------
// Scripted transport: deterministic send/connect accounting
// ---------------------------------------------------------------

/**
 * A fully scripted endpoint for retry-policy tests: counts connects
 * and sends exactly, and either answers every scatter request with a
 * canned partial or plays a fixed recv script (N timeouts, then a
 * delayed close) so failure interleavings are deterministic instead
 * of fault-schedule-dependent.
 */
struct ScriptedEndpoint
{
    /** >= 0: recv returns Timeout this many times, then Closed (the
     *  endpoint never answers). < 0: answer every request. */
    int timeoutsThenClose = -1;
    /** Sleep before returning the scripted Closed. */
    double closeDelaySeconds = 0.0;
    /** Delay between a request's send and its response's arrival. */
    double answerDelaySeconds = 0.0;

    std::atomic<int> connects{0};
    std::atomic<int> sends{0};
};

class ScriptedChannel final : public net::Channel
{
  public:
    explicit ScriptedChannel(ScriptedEndpoint &ep) : ep(ep) {}

    bool
    send(const Frame &frame) override
    {
        ep.sends.fetch_add(1);
        net::ScatterRequest req;
        if (ep.timeoutsThenClose < 0
            && decodeScatterRequest(frame, req) == WireStatus::Ok) {
            net::PartialResponse resp;
            resp.requestId = req.requestId;
            resp.shard = req.shard;
            resp.nq = req.nq;
            resp.ed = req.ed;
            resp.partial.nq = req.nq;
            resp.partial.runMax.assign(
                req.nq, -std::numeric_limits<float>::infinity());
            resp.partial.expSum.assign(req.nq, 1.0);
            resp.partial.o.assign(size_t(req.nq) * req.ed, 0.f);
            pending.push_back(encodePartialResponse(resp));
            readyAt = net::deadlineIn(ep.answerDelaySeconds);
        }
        return true;
    }

    RecvStatus
    recv(Frame &out, net::NetClock::time_point deadline) override
    {
        if (ep.timeoutsThenClose >= 0) {
            if (recvCalls++ < ep.timeoutsThenClose) {
                std::this_thread::sleep_until(deadline);
                return RecvStatus::Timeout;
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ep.closeDelaySeconds));
            return RecvStatus::Closed;
        }
        if (!pending.empty() && readyAt <= deadline) {
            std::this_thread::sleep_until(readyAt);
            out = pending.front();
            pending.pop_front();
            return RecvStatus::Ok;
        }
        std::this_thread::sleep_until(deadline);
        return RecvStatus::Timeout;
    }

    void
    close() override
    {
    }

  private:
    ScriptedEndpoint &ep;
    int recvCalls = 0;
    std::deque<Frame> pending;
    net::NetClock::time_point readyAt;
};

class ScriptedTransport final : public net::Transport
{
  public:
    std::map<std::string, ScriptedEndpoint *> endpoints;

    std::unique_ptr<net::Channel>
    connect(const std::string &endpoint,
            net::NetClock::time_point) override
    {
        auto it = endpoints.find(endpoint);
        if (it == endpoints.end())
            return nullptr;
        it->second->connects.fetch_add(1);
        return std::make_unique<ScriptedChannel>(*it->second);
    }

    std::unique_ptr<net::Listener>
    listen(const std::string &) override
    {
        return nullptr;
    }
};

TEST(ClusterFrontEnd, DeadPrimaryPromotesTheHedgeInsteadOfResending)
{
    // Regression: when the primary connection died while a hedge was
    // outstanding, the fetch used to reconnect and resend — putting a
    // duplicate request on a connection that already carried it and
    // double-counting rpcs. The hedge must be *promoted* instead:
    // exactly one connect and one send on the backup.
    ScriptedEndpoint primary;
    primary.timeoutsThenClose = 1; // silent past the hedge point,
                                   // then drops the connection
    ScriptedEndpoint backup; // answer ready immediately — but the
                             // race polls the primary first, so the
                             // death is observed before the answer

    ScriptedTransport t;
    t.endpoints = {{"prim", &primary}, {"back", &backup}};

    ClusterConfig ccfg;
    ccfg.replicas = {{"prim", "back"}};
    ccfg.requestTimeoutSeconds = 2.0;
    ccfg.hedging = true;
    ccfg.hedgeMinSeconds = 1e-3;
    ClusterFrontEnd fe(t, ccfg);

    const size_t nq = 2, ed = 4;
    const std::vector<float> u = makeQuestions(nq, ed);
    std::vector<float> got(nq * ed);
    const net::BatchResult r =
        fe.inferBatch(u.data(), nq, ed, got.data());
    ASSERT_TRUE(r.complete);

    EXPECT_EQ(primary.connects.load(), 1);
    EXPECT_EQ(primary.sends.load(), 1);
    EXPECT_EQ(backup.connects.load(), 1);
    EXPECT_EQ(backup.sends.load(), 1) << "promotion must not resend";

    const serve::LatencySnapshot snap = fe.snapshot();
    EXPECT_EQ(snap.rpcShards[0].rpcs, 2u); // primary + hedge, no more
    EXPECT_EQ(snap.rpcShards[0].hedgesFired, 1u);
    EXPECT_EQ(snap.rpcShards[0].failovers, 1u);
}

TEST(ClusterFrontEnd, HedgeDelayRecoversAfterATransientFailover)
{
    // Regression: the rpc stopwatch was only reset at the *first*
    // send, so the attempt that succeeded after a failover was timed
    // from the dead replica's send — reconnect and dead-wait
    // included — and one incident inflated the latency quantile that
    // schedules hedges long after the cluster recovered. Every
    // attempt now carries its own stopwatch.
    ScriptedEndpoint flaky;
    flaky.timeoutsThenClose = 0;   // dies on first use...
    flaky.closeDelaySeconds = 0.3; // ...after a long silent stall
    ScriptedEndpoint healthy;      // answers instantly

    ScriptedTransport t;
    t.endpoints = {{"flaky", &flaky}, {"healthy", &healthy}};

    ClusterConfig ccfg;
    ccfg.replicas = {{"flaky", "healthy"}};
    ccfg.requestTimeoutSeconds = 2.0;
    ccfg.hedging = false; // isolate the failover path
    ClusterFrontEnd fe(t, ccfg);

    const size_t nq = 1, ed = 4;
    const std::vector<float> u = makeQuestions(nq, ed);
    std::vector<float> got(nq * ed);
    const size_t batches = 20;
    for (size_t k = 0; k < batches; ++k)
        ASSERT_TRUE(fe.inferBatch(u.data(), nq, ed, got.data())
                        .complete);

    // One failover happened (batch 1), then 20 instant responses from
    // the healthy replica. Timed per attempt, even the slowest sample
    // is far under the 0.3 s stall the old accounting would have
    // charged to the first post-failover response.
    EXPECT_EQ(flaky.sends.load(), 1);
    EXPECT_EQ(healthy.connects.load(), 1); // kept alive across jobs
    EXPECT_EQ(healthy.sends.load(), int(batches));
    EXPECT_LT(fe.shardRpcLatencyQuantile(0, 1.0), 0.1);
}

// ---------------------------------------------------------------
// Pipelined window
// ---------------------------------------------------------------

TEST(ClusterFrontEnd, PipelinedWindowDeliversInOrderBitIdenticalToSerial)
{
    // A window of 4 over jittering, straggling, hedge-inducing
    // replicas: completions must come back in submission order and
    // every batch must be bit-identical to both the serial front end
    // and the in-process ShardedEngine.
    const size_t ns = 700, ed = 16, nq = 3, chunk = 64;
    const size_t kBatches = 8, kWindow = 4;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    core::ShardedEngine reference(skb, cfg);
    std::vector<std::vector<float>> questions, expect;
    for (size_t k = 0; k < kBatches; ++k) {
        questions.push_back(makeQuestions(nq, ed, 100 + k));
        expect.emplace_back(nq * ed);
        reference.inferBatch(questions[k].data(), nq,
                             expect[k].data());
    }

    // Stragglers delay ~half the messages by 50 ms — enough to shake
    // up shard completion order and fire hedges — but nothing is
    // lost, so every batch completes.
    FaultSpec shaky;
    shaky.jitterSeconds = 2e-3;
    shaky.stragglerProb = 0.5;
    shaky.stragglerLatencySeconds = 0.05;

    LoopbackNetwork netns;
    LoopbackTransport t(netns, shaky, 4242);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0-a");
    set.add(skb.shard(0), cfg, 0, t, "s0-b");
    set.add(skb.shard(1), cfg, 1, t, "s1-a");
    set.add(skb.shard(1), cfg, 1, t, "s1-b");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0-a", "s0-b"}, {"s1-a", "s1-b"}};
    ccfg.requestTimeoutSeconds = 30.0;
    ccfg.hedging = true;
    ccfg.hedgeMinSeconds = 0.005;

    // Serial pass first: one batch at a time through its own front
    // end (the same nodes serve both passes).
    std::vector<std::vector<float>> serialGot(
        kBatches, std::vector<float>(nq * ed));
    {
        ClusterConfig serial = ccfg;
        serial.pipelineDepth = 1;
        ClusterFrontEnd fe(t, serial);
        EXPECT_EQ(fe.pipelineDepth(), 1u);
        for (size_t k = 0; k < kBatches; ++k)
            ASSERT_TRUE(fe.inferBatch(questions[k].data(), nq, ed,
                                      serialGot[k].data())
                            .complete);
    }

    // Pipelined pass: keep the window full, retire in order.
    ClusterConfig piped = ccfg;
    piped.pipelineDepth = kWindow;
    ClusterFrontEnd fe(t, piped);
    EXPECT_EQ(fe.pipelineDepth(), kWindow);
    std::vector<std::vector<float>> pipedGot(
        kBatches, std::vector<float>(nq * ed));
    std::vector<uint64_t> tickets(kBatches);
    for (size_t k = 0; k < kWindow; ++k)
        tickets[k] = fe.submitBatch(questions[k].data(), nq, ed,
                                    pipedGot[k].data());
    for (size_t k = 0; k < kBatches; ++k) {
        const net::BatchResult r = fe.waitBatch(tickets[k]);
        ASSERT_TRUE(r.complete) << "batch " << k;
        EXPECT_EQ(r.shardMask, 0b11u);
        if (k + kWindow < kBatches)
            tickets[k + kWindow] =
                fe.submitBatch(questions[k + kWindow].data(), nq, ed,
                               pipedGot[k + kWindow].data());
    }

    for (size_t k = 0; k < kBatches; ++k)
        for (size_t i = 0; i < nq * ed; ++i) {
            ASSERT_EQ(f32Bits(pipedGot[k][i]), f32Bits(expect[k][i]))
                << "batch " << k << " i=" << i << " vs engine";
            ASSERT_EQ(f32Bits(pipedGot[k][i]),
                      f32Bits(serialGot[k][i]))
                << "batch " << k << " i=" << i << " vs serial";
        }
}

TEST(ClusterFrontEnd, MidWindowPartialAnswerRetiresInOrderAndRecovers)
{
    // Two batches share the window while shard 1 is dark: both retire
    // in order as partials whose merged bits equal a single-shard
    // gather. Once shard 1 comes up, the next batch is whole again.
    const size_t ns = 512, ed = 8, nq = 3, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    core::ShardedEngine reference(skb, cfg);

    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");
    // "s1" stays unregistered until the recovery phase below.

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0"}, {"s1"}};
    ccfg.requestTimeoutSeconds = 0.3;
    ccfg.allowPartial = true;
    ccfg.pipelineDepth = 2;
    ClusterFrontEnd fe(t, ccfg);

    // The expected partial: exactly shard 0's normalized gather.
    const auto shard0Expect = [&](const std::vector<float> &u) {
        core::EngineConfig solo = cfg;
        solo.scheduleGroups = 1;
        core::ColumnEngine engine0(skb.shard(0), solo);
        core::StreamPartial part;
        engine0.inferPartial(u.data(), nq, part);
        const core::StreamPartial *pp = &part;
        std::vector<float> out(nq * ed);
        core::mergeStreamPartials(&pp, 1, nq, ed, false, out.data());
        return out;
    };

    const std::vector<float> u0 = makeQuestions(nq, ed, 301);
    const std::vector<float> u1 = makeQuestions(nq, ed, 302);
    std::vector<float> got0(nq * ed), got1(nq * ed);
    const uint64_t t0 = fe.submitBatch(u0.data(), nq, ed, got0.data());
    const uint64_t t1 = fe.submitBatch(u1.data(), nq, ed, got1.data());

    // Batch 0 retires partial while batch 1 is still in the window.
    const net::BatchResult r0 = fe.waitBatch(t0);
    EXPECT_FALSE(r0.complete);
    EXPECT_EQ(r0.shardMask, 0b01u);
    const net::BatchResult r1 = fe.waitBatch(t1);
    EXPECT_FALSE(r1.complete);
    EXPECT_EQ(r1.shardMask, 0b01u);
    const std::vector<float> e0 = shard0Expect(u0);
    const std::vector<float> e1 = shard0Expect(u1);
    for (size_t i = 0; i < nq * ed; ++i) {
        ASSERT_EQ(f32Bits(got0[i]), f32Bits(e0[i])) << "i=" << i;
        ASSERT_EQ(f32Bits(got1[i]), f32Bits(e1[i])) << "i=" << i;
    }

    // Shard 1 comes back: the same front end serves whole batches
    // again, bit-identical to the in-process reference.
    set.add(skb.shard(1), cfg, 1, t, "s1");
    std::vector<float> got2(nq * ed), expect2(nq * ed);
    reference.inferBatch(u0.data(), nq, expect2.data());
    const net::BatchResult r2 =
        fe.inferBatch(u0.data(), nq, ed, got2.data());
    EXPECT_TRUE(r2.complete);
    EXPECT_EQ(r2.shardMask, 0b11u);
    for (size_t i = 0; i < nq * ed; ++i)
        ASSERT_EQ(f32Bits(got2[i]), f32Bits(expect2[i])) << "i=" << i;

    const serve::LatencySnapshot snap = fe.snapshot();
    EXPECT_EQ(snap.partialAnswers, 2 * nq);
    EXPECT_EQ(snap.failedBatches, 0u);
    EXPECT_GE(snap.rpcShards[1].deadlineMisses, 2u);
}

// ---------------------------------------------------------------
// LiveServer over a cluster backend
// ---------------------------------------------------------------

TEST(LiveServerCluster, AnswersBitIdenticalToShardedEngine)
{
    const size_t ns = 700, ed = 16, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    core::ShardedEngine reference(skb, cfg);

    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");
    set.add(skb.shard(1), cfg, 1, t, "s1");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0"}, {"s1"}};
    ccfg.requestTimeoutSeconds = 30.0;
    ccfg.pipelineDepth = 2;
    ClusterFrontEnd fe(t, ccfg);

    serve::LiveServerConfig lcfg;
    lcfg.maxBatch = 4;
    lcfg.batchTimeout = 1e-3;
    lcfg.queueCapacity = 64;
    serve::LiveServer server(fe, ed, lcfg);
    EXPECT_TRUE(server.remote());
    EXPECT_EQ(server.embeddingDim(), ed);

    const size_t kRequests = 24;
    std::vector<std::vector<float>> questions;
    std::vector<serve::Ticket> tickets;
    for (size_t i = 0; i < kRequests; ++i) {
        questions.push_back(makeQuestions(1, ed, 500 + i));
        tickets.push_back(server.submit(questions[i].data()));
        ASSERT_TRUE(tickets[i].accepted());
    }

    for (size_t i = 0; i < kRequests; ++i) {
        serve::Answer a = tickets[i].answer.get();
        EXPECT_FALSE(a.failed);
        EXPECT_EQ(a.shardMask, 0b11u);
        ASSERT_EQ(a.o.size(), ed);
        // Per-question results are batch-composition-independent, so
        // a single-question reference inference predicts the bits no
        // matter how the dynamic batcher grouped the request.
        std::vector<float> expect(ed);
        reference.inferBatch(questions[i].data(), 1, expect.data());
        for (size_t e = 0; e < ed; ++e)
            ASSERT_EQ(f32Bits(a.o[e]), f32Bits(expect[e]))
                << "request " << i << " e=" << e;
    }

    server.shutdown();
    const serve::LatencySnapshot snap = server.snapshot();
    EXPECT_EQ(snap.arrived, kRequests);
    EXPECT_EQ(snap.completed, kRequests);
    EXPECT_EQ(snap.rejected, 0u);
    // The backend's per-shard RPC counters ride along in the serving
    // snapshot: one rpc per shard per dispatched batch at least.
    ASSERT_EQ(snap.rpcShards.size(), 2u);
    EXPECT_GE(snap.rpcShards[0].rpcs, snap.batches);
    EXPECT_GE(snap.rpcShards[1].rpcs, snap.batches);
    EXPECT_EQ(snap.failedBatches, 0u);
}

TEST(LiveServerCluster, FloodAndShutdownAnswersEveryAcceptedRequest)
{
    const size_t ns = 256, ed = 8, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");
    set.add(skb.shard(1), cfg, 1, t, "s1");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0"}, {"s1"}};
    ccfg.requestTimeoutSeconds = 30.0;
    ccfg.pipelineDepth = 2;
    ClusterFrontEnd fe(t, ccfg);

    serve::LiveServerConfig lcfg;
    lcfg.maxBatch = 4;
    lcfg.batchTimeout = 1e-4;
    lcfg.queueCapacity = 8; // small: the flood must hit backpressure
    serve::LiveServer server(fe, ed, lcfg);

    const size_t kThreads = 4, kPerThread = 50;
    const std::vector<float> u = makeQuestions(1, ed);
    std::atomic<uint64_t> accepted{0}, rejected{0}, answered{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kThreads; ++c)
        clients.emplace_back([&] {
            for (size_t i = 0; i < kPerThread; ++i) {
                serve::Ticket tk = server.submit(u.data());
                if (!tk.accepted()) {
                    rejected.fetch_add(1);
                    continue;
                }
                accepted.fetch_add(1);
                // Every accepted future must become ready — even the
                // ones caught mid-flight by the shutdown below.
                serve::Answer a = tk.answer.get();
                EXPECT_FALSE(a.failed);
                answered.fetch_add(1);
            }
        });
    // Shut down while the flood is still arriving: requests already
    // accepted must drain through the cluster exactly once.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.shutdown();
    for (std::thread &c : clients)
        c.join();

    EXPECT_EQ(answered.load(), accepted.load());
    const serve::LatencySnapshot snap = server.snapshot();
    EXPECT_EQ(snap.arrived, kThreads * kPerThread);
    EXPECT_EQ(snap.completed, accepted.load());
    EXPECT_EQ(snap.rejected, rejected.load());
    EXPECT_EQ(snap.arrived, snap.completed + snap.rejected);
}

TEST(ClusterFrontEnd, ShutdownNodesStopsEveryReplica)
{
    const size_t ns = 256, ed = 8, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    core::EngineConfig cfg;
    cfg.chunkSize = chunk;

    const core::ShardedKnowledgeBase skb(kb, chunk, 2);
    LoopbackNetwork netns;
    LoopbackTransport t(netns);
    NodeSet set;
    set.add(skb.shard(0), cfg, 0, t, "s0");
    set.add(skb.shard(1), cfg, 1, t, "s1");

    ClusterConfig ccfg;
    ccfg.replicas = {{"s0"}, {"s1"}};
    {
        ClusterFrontEnd fe(t, ccfg);
        fe.shutdownNodes(1.0);
    }
    // Joins promptly because every node saw the Shutdown frame.
    set.stop();
    for (const auto &n : set.nodes)
        EXPECT_EQ(n->requestsServed(), 0u);
}

} // namespace
} // namespace mnnfast
