/**
 * @file
 * Tests for the discrete-event kernel and the DRAM channel model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/dram_bank_model.hh"
#include "sim/dram_model.hh"
#include "sim/event_queue.hh"
#include "util/rng.hh"

namespace mnnfast::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    const Tick end = q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(end, 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    const Tick end = q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 6u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(15, [&] { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(EventQueue, EmptyAndPendingReflectState)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.schedule(1, [] {});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(DramModel, InterleavesLinesAcrossChannels)
{
    DramConfig cfg;
    cfg.channels = 4;
    DramModel dram(cfg);
    for (uint64_t line = 0; line < 16; ++line)
        dram.recordAccess(line * cfg.lineBytes);
    for (size_t ch = 0; ch < 4; ++ch)
        EXPECT_EQ(dram.channelLines(ch), 4u);
    EXPECT_EQ(dram.totalLines(), 16u);
}

TEST(DramModel, SameLineSameChannel)
{
    DramConfig cfg;
    cfg.channels = 4;
    DramModel dram(cfg);
    const size_t c1 = dram.recordAccess(0x100);
    const size_t c2 = dram.recordAccess(0x13F); // same 64B line
    EXPECT_EQ(c1, c2);
}

TEST(DramModel, TransferCyclesScaleWithChannels)
{
    DramConfig one;
    one.channels = 1;
    DramConfig four;
    four.channels = 4;
    DramModel d1(one), d4(four);
    EXPECT_DOUBLE_EQ(d1.transferCycles(1000),
                     4.0 * d4.transferCycles(1000));
}

TEST(DramModel, ResetClearsCounters)
{
    DramModel dram(DramConfig{});
    dram.recordAccess(0);
    dram.resetStats();
    EXPECT_EQ(dram.totalLines(), 0u);
}

TEST(DramModel, AggregateBandwidth)
{
    DramConfig cfg;
    cfg.channels = 2;
    cfg.bytesPerCyclePerChannel = 8.0;
    DramModel dram(cfg);
    EXPECT_DOUBLE_EQ(dram.aggregateBandwidth(), 16.0);
}

// ---------------------------------------------------------------
// Bank/row-buffer model
// ---------------------------------------------------------------

TEST(DramBankModel, SequentialStreamMostlyRowHits)
{
    DramConfig dram;
    dram.channels = 4;
    DramBankModel model(dram, DramBankConfig{});
    std::vector<uint64_t> addrs(50000);
    for (size_t i = 0; i < addrs.size(); ++i)
        addrs[i] = uint64_t(i) * 64;
    const auto s = model.replay(addrs);
    EXPECT_EQ(s.lines, addrs.size());
    EXPECT_GT(double(s.rowHits) / double(s.lines), 0.95);
    EXPECT_GT(s.efficiency, 0.8);
}

TEST(DramBankModel, RandomStreamPaysConflicts)
{
    DramConfig dram;
    dram.channels = 4;
    DramBankModel model(dram, DramBankConfig{});
    mnnfast::XorShiftRng rng(3);
    std::vector<uint64_t> addrs(50000);
    for (auto &a : addrs)
        a = rng.below((1ull << 30) / 64) * 64;
    const auto s = model.replay(addrs);
    EXPECT_GT(double(s.rowConflicts) / double(s.lines), 0.5);
    EXPECT_LT(s.efficiency, 0.6);
}

TEST(DramBankModel, SequentialBeatsRandom)
{
    DramConfig dram;
    dram.channels = 2;
    DramBankModel model(dram, DramBankConfig{});

    std::vector<uint64_t> seq(20000);
    for (size_t i = 0; i < seq.size(); ++i)
        seq[i] = uint64_t(i) * 64;
    mnnfast::XorShiftRng rng(5);
    std::vector<uint64_t> rnd(20000);
    for (auto &a : rnd)
        a = rng.below((1ull << 28) / 64) * 64;

    EXPECT_GT(model.replay(seq).bytesPerCycle,
              model.replay(rnd).bytesPerCycle * 1.3);
}

TEST(DramBankModel, RowStateAccounting)
{
    DramConfig dram;
    dram.channels = 1;
    DramBankConfig banks;
    banks.banksPerChannel = 1;
    banks.rowBytes = 128; // two lines per row
    DramBankModel model(dram, banks);

    // line0 (miss: bank closed), line1 same row (hit),
    // line at a different row (conflict), back (conflict).
    const auto s = model.replay({0, 64, 4096, 0});
    EXPECT_EQ(s.rowMisses, 1u);
    EXPECT_EQ(s.rowHits, 1u);
    EXPECT_EQ(s.rowConflicts, 2u);
}

TEST(DramBankModel, EmptyStreamIsZero)
{
    DramBankModel model(DramConfig{}, DramBankConfig{});
    const auto s = model.replay({});
    EXPECT_EQ(s.lines, 0u);
    EXPECT_DOUBLE_EQ(s.cycles, 0.0);
}

TEST(DramBankModel, BadGeometryIsFatal)
{
    DramBankConfig banks;
    banks.rowBytes = 16; // smaller than a line
    EXPECT_EXIT(DramBankModel(DramConfig{}, banks),
                ::testing::ExitedWithCode(1), "row size");
}

} // namespace
} // namespace mnnfast::sim
