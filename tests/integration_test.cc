/**
 * @file
 * Cross-module integration tests: the full data -> train -> deploy ->
 * infer pipeline, plus end-to-end sanity of the simulated platform
 * studies (the orderings each paper figure depends on).
 */

#include <gtest/gtest.h>

#include "core/mnnfast.hh"
#include "data/babi.hh"
#include "fpga/accelerator.hh"
#include "fpga/energy_model.hh"
#include "gpu/stream_sim.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"
#include "train/model.hh"
#include "train/trainer.hh"

namespace mnnfast {
namespace {

/**
 * The full product pipeline: generate a task, train a model, deploy
 * it into every engine, and check all engines answer identically and
 * accurately.
 */
TEST(Integration, TrainDeployAnswerAcrossAllEngines)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            101);
    const data::Dataset train_set = gen.generateSet(300, 6);
    const data::Dataset test_set = gen.generateSet(40, 6);

    train::ModelConfig mc;
    mc.vocabSize = vocab.size();
    mc.embeddingDim = 20;
    mc.hops = 2;
    mc.maxStory = 16;
    train::MemNnModel model(mc, 102);

    train::TrainConfig tc;
    tc.epochs = 25;
    tc.learningRate = 0.03f;
    const auto result = train::trainModel(model, train_set, tc);
    EXPECT_GT(result.trainAccuracy, 0.7);

    core::EngineConfig ecfg;
    ecfg.chunkSize = 8;
    ecfg.skipThreshold = 0.01f;

    std::vector<std::vector<data::WordId>> all_answers;
    double accuracy = 0.0;
    for (core::EngineKind kind :
         {core::EngineKind::Baseline, core::EngineKind::Column,
          core::EngineKind::ColumnStreaming,
          core::EngineKind::MnnFast}) {
        auto system =
            core::MnnFastSystem::fromTrained(model, kind, ecfg);
        std::vector<data::WordId> answers;
        size_t correct = 0;
        for (const auto &ex : test_set.examples) {
            system.clearStory();
            for (const auto &s : ex.story)
                system.addStorySentence(s);
            const data::WordId a = system.ask(ex.question);
            answers.push_back(a);
            correct += a == ex.answer;
        }
        accuracy = double(correct) / test_set.size();
        EXPECT_GT(accuracy, 0.6)
            << core::engineKindName(kind) << " accuracy";
        all_answers.push_back(std::move(answers));
    }

    // Baseline vs column vs streaming must agree exactly (no
    // skipping effect at th=0.01 on a well-trained sparse attention
    // is *allowed* to flip an answer, but with these tasks the
    // attention mass sits far above the threshold).
    EXPECT_EQ(all_answers[0], all_answers[1]);
    EXPECT_EQ(all_answers[1], all_answers[2]);
}

TEST(Integration, ZeroSkipTradeoffIsMonotone)
{
    // Paper Fig. 7: higher thresholds monotonically reduce kept rows.
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            103);
    const data::Dataset set = gen.generateSet(200, 10);

    train::ModelConfig mc;
    mc.vocabSize = vocab.size();
    mc.embeddingDim = 16;
    mc.hops = 1;
    mc.maxStory = 16;
    train::MemNnModel model(mc, 104);
    train::TrainConfig tc;
    tc.epochs = 15;
    tc.learningRate = 0.05f;
    train::trainModel(model, set, tc);

    uint64_t prev_kept = ~uint64_t{0};
    for (float th : {0.001f, 0.01f, 0.1f, 0.3f}) {
        uint64_t kept = 0, total = 0;
        train::evaluateAccuracySkip(model, set, th, kept, total);
        EXPECT_LE(kept, prev_kept) << "threshold " << th;
        prev_kept = kept;
    }
}

TEST(Integration, CpuFigureOrderingsHold)
{
    // The orderings behind Figs. 9-11: at 20 threads on 4 channels,
    // simulated execution time must improve along the optimization
    // ladder, and off-chip demand must drop.
    sim::WorkloadParams wp;
    wp.ns = 16384;
    wp.ed = 16;
    wp.nq = 8;
    wp.chunkSize = 256;
    sim::CacheConfig llc;
    llc.sizeBytes = 256 << 10;

    const auto base =
        sim::simulateDataflow(sim::Dataflow::Baseline, wp, llc);
    const auto col =
        sim::simulateDataflow(sim::Dataflow::Column, wp, llc);
    const auto str =
        sim::simulateDataflow(sim::Dataflow::ColumnStreaming, wp, llc);
    const auto mnn =
        sim::simulateDataflow(sim::Dataflow::MnnFast, wp, llc);

    sim::CpuSystemConfig scfg;
    scfg.dram.channels = 4;
    sim::CpuSystemModel cpu(scfg);

    const double t_base = cpu.executionCycles(base, 20);
    const double t_col = cpu.executionCycles(col, 20);
    const double t_str = cpu.executionCycles(str, 20);
    const double t_mnn = cpu.executionCycles(mnn, 20);
    EXPECT_LT(t_col, t_base);
    EXPECT_LT(t_str, t_col);
    EXPECT_LT(t_mnn, t_str);

    EXPECT_LT(col.demandMisses(), base.demandMisses());
    EXPECT_LT(str.demandMisses(), col.demandMisses());
}

TEST(Integration, FpgaAndCpuProduceSameAnswers)
{
    // The FPGA accelerator model must be answer-equivalent to the CPU
    // facade when wired to the same trained weights (single hop; the
    // accelerator implements one memory representation stage).
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::YesNo, vocab, 105);

    train::ModelConfig mc;
    mc.vocabSize = vocab.size();
    mc.embeddingDim = 25;
    mc.hops = 1;
    mc.maxStory = 16;
    train::MemNnModel model(mc, 106);

    core::EngineConfig ecfg;
    ecfg.chunkSize = 25;
    auto system = core::MnnFastSystem::fromTrained(
        model, core::EngineKind::Column, ecfg);

    fpga::FpgaConfig fcfg;
    fcfg.embeddingDim = 25;
    fcfg.chunkSize = 25;
    fpga::FpgaAccelerator accel(fcfg);

    for (int trial = 0; trial < 10; ++trial) {
        const data::Example ex = gen.generate(8);
        system.clearStory();
        for (const auto &s : ex.story)
            system.addStorySentence(s);

        // CPU answer via the facade.
        const data::WordId cpu_answer = system.ask(ex.question);

        // FPGA answer: embed the question with B, run the response
        // stage on the accelerator, add, project through W.
        const auto &p = model.parameters();
        std::vector<float> u(25, 0.f);
        for (data::WordId w : ex.question)
            for (size_t e = 0; e < 25; ++e)
                u[e] += p.b[size_t(w) * 25 + e];

        // Rebuild the same KB the facade holds (hop 0).
        core::KnowledgeBase kb(25);
        {
            core::EmbeddingTable a_table(vocab.size(), 25);
            core::EmbeddingTable c_table(vocab.size(), 25);
            a_table.loadFrom(p.a[0]);
            c_table.loadFrom(p.c[0]);
            core::Embedder ea(a_table), ec(c_table);
            std::vector<float> mrow(25), crow(25);
            for (size_t i = 0; i < ex.story.size(); ++i) {
                ea.embed(ex.story[i], mrow.data());
                ec.embed(ex.story[i], crow.data());
                for (size_t e = 0; e < 25; ++e) {
                    mrow[e] += p.ta[0][i * 25 + e];
                    crow[e] += p.tc[0][i * 25 + e];
                }
                kb.addSentence(mrow.data(), crow.data());
            }
        }

        std::vector<float> o(25);
        accel.runInference(u.data(), 1, kb, o.data());
        for (size_t e = 0; e < 25; ++e)
            u[e] += o[e];

        size_t best = 0;
        float best_logit = -1e30f;
        for (size_t v = 0; v < vocab.size(); ++v) {
            float logit = 0.f;
            for (size_t e = 0; e < 25; ++e)
                logit += p.w[v * 25 + e] * u[e];
            if (logit > best_logit) {
                best_logit = logit;
                best = v;
            }
        }
        EXPECT_EQ(static_cast<data::WordId>(best), cpu_answer)
            << "trial " << trial;
    }
}

TEST(Integration, EnergyComparisonFavorsFpga)
{
    // Section 5.5 shape: for equal work, the FPGA consumes much less
    // energy even though it is slower.
    fpga::EnergyModel energy{fpga::EnergyConfig{}};
    // Representative: CPU finishes the batch in 1 s; the FPGA in 8 s.
    const double gain = energy.efficiencyGain(1.0, 8.0);
    EXPECT_GT(gain, 3.0);
    EXPECT_LT(gain, 70.0);
}

TEST(Integration, GpuStudyEndToEnd)
{
    gpu::CudaStreamSim sim{gpu::GpuConfig{}, gpu::PcieConfig{}};
    gpu::GpuWorkload wl;
    wl.ns = 8'000'000;
    wl.chunkSize = 500'000;
    wl.nq = 128;

    // Streams help on one GPU; four GPUs beat one.
    const double serial = sim.runSingleGpu(wl, 1).makespan;
    const double streamed = sim.runSingleGpu(wl, 4).makespan;
    const double multi = sim.runMultiGpu(wl, 4, 2, true).makespan;
    EXPECT_LT(streamed, serial);
    EXPECT_LT(multi, streamed);
}

} // namespace
} // namespace mnnfast
