/**
 * @file
 * Unit and property tests for src/blas against naive references,
 * parameterized across sizes including non-multiples of the unroll
 * and blocking factors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/kernels.hh"
#include "util/rng.hh"

namespace mnnfast::blas {
namespace {

std::vector<float>
randomVec(size_t n, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<float> v(n);
    for (float &x : v)
        x = rng.uniformRange(-1.0f, 1.0f);
    return v;
}

float
naiveDot(const std::vector<float> &x, const std::vector<float> &y)
{
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        acc += double(x[i]) * y[i];
    return static_cast<float>(acc);
}

class KernelSizes : public ::testing::TestWithParam<size_t>
{};

TEST_P(KernelSizes, DotMatchesNaive)
{
    const size_t n = GetParam();
    const auto x = randomVec(n, 1), y = randomVec(n, 2);
    EXPECT_NEAR(dot(x.data(), y.data(), n), naiveDot(x, y),
                1e-4 * std::max<size_t>(n, 1));
}

TEST_P(KernelSizes, AxpyMatchesNaive)
{
    const size_t n = GetParam();
    const auto x = randomVec(n, 3);
    auto y = randomVec(n, 4);
    auto expected = y;
    for (size_t i = 0; i < n; ++i)
        expected[i] += 2.5f * x[i];
    axpy(2.5f, x.data(), y.data(), n);
    for (size_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(y[i], expected[i]);
}

TEST_P(KernelSizes, ScalScales)
{
    const size_t n = GetParam();
    auto x = randomVec(n, 5);
    const auto orig = x;
    scal(-3.0f, x.data(), n);
    for (size_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(x[i], -3.0f * orig[i]);
}

TEST_P(KernelSizes, SumMatchesNaive)
{
    const size_t n = GetParam();
    const auto x = randomVec(n, 6);
    double expected = 0.0;
    for (float v : x)
        expected += v;
    EXPECT_NEAR(sum(x.data(), n), expected,
                1e-4 * std::max<size_t>(n, 1));
}

TEST_P(KernelSizes, ZeroAndCopy)
{
    const size_t n = GetParam();
    auto x = randomVec(n, 7);
    std::vector<float> y(n, -1.0f);
    copy(x.data(), y.data(), n);
    EXPECT_EQ(x, y);
    zero(x.data(), n);
    for (float v : x)
        ASSERT_EQ(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelSizes,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 15,
                                           16, 17, 48, 100, 255, 1024));

TEST(MaxElement, FindsMaximum)
{
    std::vector<float> v = {-5.f, 2.f, 7.f, 7.f, -1.f};
    EXPECT_FLOAT_EQ(maxElement(v.data(), v.size()), 7.f);
}

TEST(MaxElement, SingleElement)
{
    float v = -3.f;
    EXPECT_FLOAT_EQ(maxElement(&v, 1), -3.f);
}

TEST(MaxElement, EmptyPanics)
{
    float v = 0.f;
    EXPECT_DEATH(maxElement(&v, 0), "maxElement");
}

struct GemvDims
{
    size_t rows;
    size_t cols;
};

class GemvTest : public ::testing::TestWithParam<GemvDims>
{};

TEST_P(GemvTest, MatchesNaive)
{
    const auto [rows, cols] = GetParam();
    const auto a = randomVec(rows * cols, 11);
    const auto x = randomVec(cols, 12);
    std::vector<float> y(rows, -9.f);
    gemv(a.data(), rows, cols, x.data(), y.data());
    for (size_t r = 0; r < rows; ++r) {
        double ref = 0.0;
        for (size_t c = 0; c < cols; ++c)
            ref += double(a[r * cols + c]) * x[c];
        ASSERT_NEAR(y[r], ref, 1e-3) << "row " << r;
    }
}

TEST_P(GemvTest, TransposedMatchesNaive)
{
    const auto [rows, cols] = GetParam();
    const auto a = randomVec(rows * cols, 13);
    const auto x = randomVec(rows, 14);
    std::vector<float> y(cols, -9.f);
    gemvT(a.data(), rows, cols, x.data(), y.data());
    for (size_t c = 0; c < cols; ++c) {
        double ref = 0.0;
        for (size_t r = 0; r < rows; ++r)
            ref += double(a[r * cols + c]) * x[r];
        ASSERT_NEAR(y[c], ref, 1e-3) << "col " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, GemvTest,
    ::testing::Values(GemvDims{1, 1}, GemvDims{3, 5}, GemvDims{5, 3},
                      GemvDims{16, 16}, GemvDims{33, 48},
                      GemvDims{100, 7}));

struct GemmDims
{
    size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmDims>
{};

TEST_P(GemmTest, MatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const auto a = randomVec(m * k, 21);
    const auto b = randomVec(k * n, 22);
    std::vector<float> c(m * n, 99.f);
    gemm(a.data(), b.data(), c.data(), m, k, n);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (size_t p = 0; p < k; ++p)
                ref += double(a[i * k + p]) * b[p * n + j];
            ASSERT_NEAR(c[i * n + j], ref, 1e-3)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST_P(GemmTest, AccumulateAddsOntoC)
{
    const auto [m, k, n] = GetParam();
    const auto a = randomVec(m * k, 23);
    const auto b = randomVec(k * n, 24);
    std::vector<float> c0(m * n, 0.f);
    gemm(a.data(), b.data(), c0.data(), m, k, n);
    std::vector<float> c1(m * n, 1.f);
    gemm(a.data(), b.data(), c1.data(), m, k, n, true);
    for (size_t i = 0; i < m * n; ++i)
        ASSERT_NEAR(c1[i], c0[i] + 1.f, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, GemmTest,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{4, 4, 4},
                      GemmDims{5, 7, 3}, GemmDims{8, 300, 16},
                      GemmDims{9, 257, 5}, GemmDims{16, 48, 32}));

TEST(Softmax, SumsToOne)
{
    auto x = randomVec(100, 31);
    softmax(x.data(), x.size());
    EXPECT_NEAR(sum(x.data(), x.size()), 1.0f, 1e-5);
    for (float v : x)
        ASSERT_GT(v, 0.0f);
}

TEST(Softmax, StableForLargeLogits)
{
    std::vector<float> x = {1000.f, 1001.f, 999.f};
    softmax(x.data(), x.size());
    EXPECT_NEAR(sum(x.data(), x.size()), 1.0f, 1e-5);
    EXPECT_GT(x[1], x[0]);
    EXPECT_GT(x[0], x[2]);
}

TEST(Softmax, RawMatchesStableForSmallLogits)
{
    auto x = randomVec(64, 32);
    auto y = x;
    softmax(x.data(), x.size());
    softmaxRaw(y.data(), y.size());
    for (size_t i = 0; i < x.size(); ++i)
        ASSERT_NEAR(x[i], y[i], 1e-6);
}

TEST(Softmax, UniformInputGivesUniformOutput)
{
    std::vector<float> x(10, 0.3f);
    softmax(x.data(), x.size());
    for (float v : x)
        ASSERT_NEAR(v, 0.1f, 1e-6);
}

TEST(Softmax, EmptyIsNoOp)
{
    softmax(nullptr, 0);
    softmaxRaw(nullptr, 0);
    SUCCEED();
}

TEST(Softmax, OrderPreserving)
{
    std::vector<float> x = {0.1f, 2.0f, -1.0f, 0.5f};
    softmax(x.data(), x.size());
    EXPECT_GT(x[1], x[3]);
    EXPECT_GT(x[3], x[0]);
    EXPECT_GT(x[0], x[2]);
}

TEST(ExpInplace, MatchesStdExp)
{
    auto x = randomVec(33, 41);
    const auto orig = x;
    expInplace(x.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i)
        ASSERT_FLOAT_EQ(x[i], std::exp(orig[i]));
}

} // namespace
} // namespace mnnfast::blas
