/**
 * @file
 * Unit and property tests for src/blas against naive references,
 * parameterized across sizes including non-multiples of the unroll
 * and blocking factors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "blas/kernels.hh"
#include "util/bf16.hh"
#include "util/rng.hh"

namespace mnnfast::blas {
namespace {

std::vector<float>
randomVec(size_t n, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<float> v(n);
    for (float &x : v)
        x = rng.uniformRange(-1.0f, 1.0f);
    return v;
}

float
naiveDot(const std::vector<float> &x, const std::vector<float> &y)
{
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        acc += double(x[i]) * y[i];
    return static_cast<float>(acc);
}

class KernelSizes : public ::testing::TestWithParam<size_t>
{};

TEST_P(KernelSizes, DotMatchesNaive)
{
    const size_t n = GetParam();
    const auto x = randomVec(n, 1), y = randomVec(n, 2);
    EXPECT_NEAR(dot(x.data(), y.data(), n), naiveDot(x, y),
                1e-4 * std::max<size_t>(n, 1));
}

TEST_P(KernelSizes, AxpyMatchesNaive)
{
    const size_t n = GetParam();
    const auto x = randomVec(n, 3);
    auto y = randomVec(n, 4);
    auto expected = y;
    for (size_t i = 0; i < n; ++i)
        expected[i] += 2.5f * x[i];
    axpy(2.5f, x.data(), y.data(), n);
    // Tolerance scaled by the term magnitudes, not the result: the
    // FMA path single-rounds a*x + y, so when the terms nearly cancel
    // the two roundings differ by ~ulp(a*x), far above ulp(result).
    for (size_t i = 0; i < n; ++i) {
        const float mag =
            std::abs(2.5f * x[i]) + std::abs(expected[i] - 2.5f * x[i]);
        ASSERT_NEAR(y[i], expected[i], 1e-6f * mag + 1e-7f);
    }
}

TEST_P(KernelSizes, ScalScales)
{
    const size_t n = GetParam();
    auto x = randomVec(n, 5);
    const auto orig = x;
    scal(-3.0f, x.data(), n);
    for (size_t i = 0; i < n; ++i)
        ASSERT_FLOAT_EQ(x[i], -3.0f * orig[i]);
}

TEST_P(KernelSizes, SumMatchesNaive)
{
    const size_t n = GetParam();
    const auto x = randomVec(n, 6);
    double expected = 0.0;
    for (float v : x)
        expected += v;
    EXPECT_NEAR(sum(x.data(), n), expected,
                1e-4 * std::max<size_t>(n, 1));
}

TEST_P(KernelSizes, ZeroAndCopy)
{
    const size_t n = GetParam();
    auto x = randomVec(n, 7);
    std::vector<float> y(n, -1.0f);
    copy(x.data(), y.data(), n);
    EXPECT_EQ(x, y);
    zero(x.data(), n);
    for (float v : x)
        ASSERT_EQ(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelSizes,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 15,
                                           16, 17, 48, 100, 255, 1024));

TEST(MaxElement, FindsMaximum)
{
    std::vector<float> v = {-5.f, 2.f, 7.f, 7.f, -1.f};
    EXPECT_FLOAT_EQ(maxElement(v.data(), v.size()), 7.f);
}

TEST(MaxElement, SingleElement)
{
    float v = -3.f;
    EXPECT_FLOAT_EQ(maxElement(&v, 1), -3.f);
}

TEST(MaxElement, EmptyPanics)
{
    float v = 0.f;
    EXPECT_DEATH(maxElement(&v, 0), "maxElement");
}

struct GemvDims
{
    size_t rows;
    size_t cols;
};

class GemvTest : public ::testing::TestWithParam<GemvDims>
{};

TEST_P(GemvTest, MatchesNaive)
{
    const auto [rows, cols] = GetParam();
    const auto a = randomVec(rows * cols, 11);
    const auto x = randomVec(cols, 12);
    std::vector<float> y(rows, -9.f);
    gemv(a.data(), rows, cols, x.data(), y.data());
    for (size_t r = 0; r < rows; ++r) {
        double ref = 0.0;
        for (size_t c = 0; c < cols; ++c)
            ref += double(a[r * cols + c]) * x[c];
        ASSERT_NEAR(y[r], ref, 1e-3) << "row " << r;
    }
}

TEST_P(GemvTest, TransposedMatchesNaive)
{
    const auto [rows, cols] = GetParam();
    const auto a = randomVec(rows * cols, 13);
    const auto x = randomVec(rows, 14);
    std::vector<float> y(cols, -9.f);
    gemvT(a.data(), rows, cols, x.data(), y.data());
    for (size_t c = 0; c < cols; ++c) {
        double ref = 0.0;
        for (size_t r = 0; r < rows; ++r)
            ref += double(a[r * cols + c]) * x[r];
        ASSERT_NEAR(y[c], ref, 1e-3) << "col " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, GemvTest,
    ::testing::Values(GemvDims{1, 1}, GemvDims{3, 5}, GemvDims{5, 3},
                      GemvDims{16, 16}, GemvDims{33, 48},
                      GemvDims{100, 7}));

struct GemmDims
{
    size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmDims>
{};

TEST_P(GemmTest, MatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const auto a = randomVec(m * k, 21);
    const auto b = randomVec(k * n, 22);
    std::vector<float> c(m * n, 99.f);
    gemm(a.data(), b.data(), c.data(), m, k, n);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (size_t p = 0; p < k; ++p)
                ref += double(a[i * k + p]) * b[p * n + j];
            ASSERT_NEAR(c[i * n + j], ref, 1e-3)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST_P(GemmTest, AccumulateAddsOntoC)
{
    const auto [m, k, n] = GetParam();
    const auto a = randomVec(m * k, 23);
    const auto b = randomVec(k * n, 24);
    std::vector<float> c0(m * n, 0.f);
    gemm(a.data(), b.data(), c0.data(), m, k, n);
    std::vector<float> c1(m * n, 1.f);
    gemm(a.data(), b.data(), c1.data(), m, k, n, true);
    for (size_t i = 0; i < m * n; ++i)
        ASSERT_NEAR(c1[i], c0[i] + 1.f, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, GemmTest,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{4, 4, 4},
                      GemmDims{5, 7, 3}, GemmDims{8, 300, 16},
                      GemmDims{9, 257, 5}, GemmDims{16, 48, 32}));

TEST(Softmax, SumsToOne)
{
    auto x = randomVec(100, 31);
    softmax(x.data(), x.size());
    EXPECT_NEAR(sum(x.data(), x.size()), 1.0f, 1e-5);
    for (float v : x)
        ASSERT_GT(v, 0.0f);
}

TEST(Softmax, StableForLargeLogits)
{
    std::vector<float> x = {1000.f, 1001.f, 999.f};
    softmax(x.data(), x.size());
    EXPECT_NEAR(sum(x.data(), x.size()), 1.0f, 1e-5);
    EXPECT_GT(x[1], x[0]);
    EXPECT_GT(x[0], x[2]);
}

TEST(Softmax, RawMatchesStableForSmallLogits)
{
    auto x = randomVec(64, 32);
    auto y = x;
    softmax(x.data(), x.size());
    softmaxRaw(y.data(), y.size());
    for (size_t i = 0; i < x.size(); ++i)
        ASSERT_NEAR(x[i], y[i], 1e-6);
}

TEST(Softmax, UniformInputGivesUniformOutput)
{
    std::vector<float> x(10, 0.3f);
    softmax(x.data(), x.size());
    for (float v : x)
        ASSERT_NEAR(v, 0.1f, 1e-6);
}

TEST(Softmax, EmptyIsNoOp)
{
    softmax(nullptr, 0);
    softmaxRaw(nullptr, 0);
    SUCCEED();
}

TEST(Softmax, OrderPreserving)
{
    std::vector<float> x = {0.1f, 2.0f, -1.0f, 0.5f};
    softmax(x.data(), x.size());
    EXPECT_GT(x[1], x[3]);
    EXPECT_GT(x[3], x[0]);
    EXPECT_GT(x[0], x[2]);
}

TEST(ExpInplace, MatchesStdExp)
{
    auto x = randomVec(33, 41);
    const auto orig = x;
    expInplace(x.data(), x.size());
    // The vectorized exponential is accurate to ~2 ulp, not
    // bit-identical to libm.
    for (size_t i = 0; i < x.size(); ++i) {
        const float ref = std::exp(orig[i]);
        ASSERT_NEAR(x[i], ref, 2e-6f * ref);
    }
}

TEST(Softmax, RawSurvivesOverflowingLogits)
{
    // Regression: logits beyond ~88 overflow e^x to inf, and the
    // unguarded single-pass normalization produced inf/inf = NaN.
    // softmaxRaw now falls back to the max-subtracted path when the
    // peak logit is large.
    std::vector<float> x = {100.f, 101.f, 99.f, 50.f};
    softmaxRaw(x.data(), x.size());
    for (float v : x) {
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GE(v, 0.0f);
    }
    EXPECT_NEAR(sum(x.data(), x.size()), 1.0f, 1e-5);
    EXPECT_GT(x[1], x[0]);
    EXPECT_GT(x[0], x[2]);
    EXPECT_GT(x[2], x[3]);
}

TEST(Dispatch, BackendNameMatchesSimdFlag)
{
    const std::string name = kernelBackendName();
    if (simdActive())
        EXPECT_EQ(name, "avx2");
    else
        EXPECT_EQ(name, "scalar");
}

// ---------------------------------------------------------------------
// SIMD-vs-scalar property tests. Every dispatched kernel is compared
// against the portable reference in blas::scalar across sizes spanning
// 0..1025 (odd lengths, non-multiples of every vector width and unroll
// factor), unaligned base offsets, and inputs including negatives and
// denormals. On hosts where dispatch resolves to the scalar table the
// comparison is trivially exact — the suite then simply pins the
// scalar path's behaviour.
// ---------------------------------------------------------------------

/** Sizes crossing all vector-width and unroll boundaries. */
const size_t kSweepSizes[] = {0,   1,   2,   3,   5,   7,    8,    9,
                              15,  16,  17,  31,  32,  33,   63,   64,
                              65,  100, 127, 128, 129, 255,  256,  257,
                              511, 512, 513, 999, 1000, 1023, 1024, 1025};

/** Base offsets 0..3 break 32-byte (and 16-byte) alignment. */
constexpr size_t kMaxOffset = 4;

/**
 * A vector with a deliberately nasty value mix: the usual [-1, 1)
 * range plus interspersed negatives, exact zeros, denormals, and
 * sign flips, padded by `pad` so callers can slide the base pointer.
 */
std::vector<float>
nastyVec(size_t n, uint64_t seed, size_t pad = kMaxOffset)
{
    XorShiftRng rng(seed);
    std::vector<float> v(n + pad);
    for (size_t i = 0; i < v.size(); ++i) {
        float x = rng.uniformRange(-1.0f, 1.0f);
        switch (i % 7) {
        case 3:
            x = 0.0f;
            break;
        case 5:
            x = (x < 0 ? -1.f : 1.f) * 1.1754944e-38f * 0.5f; // denormal
            break;
        default:
            break;
        }
        v[i] = x;
    }
    return v;
}

class SimdVsScalar : public ::testing::TestWithParam<size_t>
{};

TEST_P(SimdVsScalar, Dot)
{
    const size_t n = GetParam();
    const auto x = nastyVec(n, 101), y = nastyVec(n, 102);
    for (size_t off = 0; off < kMaxOffset; ++off) {
        const float got = dot(x.data() + off, y.data() + off, n);
        const float ref = scalar::dot(x.data() + off, y.data() + off, n);
        ASSERT_NEAR(got, ref, 1e-5f * std::max<float>(n, 1.f))
            << "n=" << n << " off=" << off;
    }
}

TEST_P(SimdVsScalar, Axpy)
{
    const size_t n = GetParam();
    const auto x = nastyVec(n, 103);
    for (size_t off = 0; off < kMaxOffset; ++off) {
        auto y1 = nastyVec(n, 104);
        auto y2 = y1;
        axpy(-1.7f, x.data() + off, y1.data() + off, n);
        scalar::axpy(-1.7f, x.data() + off, y2.data() + off, n);
        for (size_t i = 0; i < n + kMaxOffset; ++i) {
            if (i < off || i >= off + n) {
                ASSERT_EQ(y1[i], y2[i]) // outside the span: untouched
                    << "n=" << n << " off=" << off << " i=" << i;
                continue;
            }
            const float term = std::abs(1.7f * x[i - off]);
            ASSERT_NEAR(y1[i], y2[i],
                        1e-6f * (term + std::abs(y2[i])) + 1e-7f)
                << "n=" << n << " off=" << off << " i=" << i;
        }
    }
}

TEST_P(SimdVsScalar, Scal)
{
    const size_t n = GetParam();
    for (size_t off = 0; off < kMaxOffset; ++off) {
        auto x1 = nastyVec(n, 105);
        auto x2 = x1;
        scal(0.731f, x1.data() + off, n);
        scalar::scal(0.731f, x2.data() + off, n);
        for (size_t i = 0; i < n + kMaxOffset; ++i)
            ASSERT_EQ(x1[i], x2[i]) // one rounding each: bit-identical
                << "n=" << n << " off=" << off << " i=" << i;
    }
}

TEST_P(SimdVsScalar, Sum)
{
    const size_t n = GetParam();
    const auto x = nastyVec(n, 106);
    for (size_t off = 0; off < kMaxOffset; ++off) {
        ASSERT_NEAR(sum(x.data() + off, n), scalar::sum(x.data() + off, n),
                    1e-5f * std::max<float>(n, 1.f))
            << "n=" << n << " off=" << off;
    }
}

TEST_P(SimdVsScalar, MaxElement)
{
    const size_t n = GetParam();
    if (n == 0)
        return; // empty input is a fatal precondition, tested elsewhere
    const auto x = nastyVec(n, 107);
    for (size_t off = 0; off < kMaxOffset; ++off) {
        ASSERT_EQ(maxElement(x.data() + off, n),
                  scalar::maxElement(x.data() + off, n))
            << "n=" << n << " off=" << off;
    }
}

TEST_P(SimdVsScalar, ExpInplace)
{
    const size_t n = GetParam();
    for (size_t off = 0; off < kMaxOffset; ++off) {
        auto x1 = nastyVec(n, 108);
        // widen the argument range to hit under/overflow handling
        for (size_t i = 0; i < x1.size(); ++i)
            x1[i] *= (i % 3 == 0) ? 95.f : 10.f;
        auto x2 = x1;
        expInplace(x1.data() + off, n);
        scalar::expInplace(x2.data() + off, n);
        for (size_t i = 0; i < n + kMaxOffset; ++i) {
            if (i < off || i >= off + n) {
                ASSERT_EQ(x1[i], x2[i]) // outside the span: untouched
                    << "n=" << n << " off=" << off << " i=" << i;
                continue;
            }
            if (std::isinf(x2[i])) { // both overflow to +inf
                ASSERT_EQ(x1[i], x2[i])
                    << "n=" << n << " off=" << off << " i=" << i;
                continue;
            }
            // ~2 ulp relative, plus an absolute floor where the vector
            // exp flushes sub-e^-87.3 results to zero and libm returns
            // a denormal.
            ASSERT_NEAR(x1[i], x2[i], 2e-6f * x2[i] + 1e-37f)
                << "n=" << n << " off=" << off << " i=" << i;
        }
    }
}

TEST_P(SimdVsScalar, ExpShiftInplace)
{
    const size_t n = GetParam();
    for (size_t off = 0; off < kMaxOffset; ++off) {
        auto x1 = nastyVec(n, 109);
        for (float &v : x1)
            v = v * 50.f + 60.f; // logits in [10, 110]
        auto x2 = x1;
        expShiftInplace(x1.data() + off, n, 110.f);
        scalar::expShiftInplace(x2.data() + off, n, 110.f);
        for (size_t i = 0; i < n + kMaxOffset; ++i) {
            if (i < off || i >= off + n) {
                ASSERT_EQ(x1[i], x2[i]) // outside the span: untouched
                    << "n=" << n << " off=" << off << " i=" << i;
                continue;
            }
            ASSERT_NEAR(x1[i], x2[i], 2e-6f * x2[i] + 1e-37f)
                << "n=" << n << " off=" << off << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimdVsScalar,
                         ::testing::ValuesIn(kSweepSizes));

TEST(DotBatch, MatchesPerRowDot)
{
    const size_t d = 129, stride = 133; // padded rows: stride > n
    for (size_t count : {size_t(0), size_t(1), size_t(3), size_t(4),
                         size_t(5), size_t(17), size_t(64)}) {
        const auto x = nastyVec(d, 201);
        const auto rows = nastyVec(count * stride, 202);
        std::vector<float> got(count + 1, -9.f), ref(count + 1, -9.f);
        dotBatch(x.data(), rows.data(), count, d, stride, got.data());
        scalar::dotBatch(x.data(), rows.data(), count, d, stride,
                         ref.data());
        for (size_t r = 0; r < count; ++r) {
            ASSERT_NEAR(got[r], ref[r], 1e-5f * d)
                << "count=" << count << " row=" << r;
        }
        ASSERT_EQ(got[count], -9.f); // no overwrite past the batch
    }
}

TEST(WeightedSumSkip, MatchesScalarIncludingSkipDecisions)
{
    const size_t d = 65, stride = 65;
    for (float threshold : {0.0f, 0.05f, 0.5f}) {
        for (size_t count : {size_t(0), size_t(1), size_t(7),
                             size_t(100)}) {
            auto e = nastyVec(count, 301);
            for (float &v : e)
                v = std::abs(v) + 1e-3f; // exp outputs are positive
            const auto rows = nastyVec(count * stride, 302);
            std::vector<float> acc1(d, 0.f), acc2(d, 0.f);
            double s1 = 0.0, s2 = 0.0;
            uint64_t kept1 = 0, skip1 = 0, kept2 = 0, skip2 = 0;
            weightedSumSkip(e.data(), rows.data(), count, d, stride,
                            threshold, s1, acc1.data(), kept1, skip1);
            scalar::weightedSumSkip(e.data(), rows.data(), count, d,
                                    stride, threshold, s2, acc2.data(),
                                    kept2, skip2);
            // The running sum and the skip test are scalar double
            // arithmetic in both paths, so decisions are identical.
            ASSERT_EQ(kept1, kept2)
                << "th=" << threshold << " count=" << count;
            ASSERT_EQ(skip1, skip2);
            ASSERT_EQ(kept1 + skip1, count);
            ASSERT_DOUBLE_EQ(s1, s2);
            for (size_t i = 0; i < d; ++i) {
                ASSERT_NEAR(acc1[i], acc2[i], 1e-5f + 1e-5f * count)
                    << "th=" << threshold << " count=" << count
                    << " i=" << i;
            }
        }
    }
}

TEST(WeightedSumSkip, ZeroThresholdKeepsEverything)
{
    const size_t d = 16, count = 50;
    auto e = nastyVec(count, 303);
    for (float &v : e)
        v = std::abs(v) + 1e-3f;
    const auto rows = nastyVec(count * d, 304);
    std::vector<float> acc(d, 0.f);
    double s = 0.0;
    uint64_t kept = 0, skipped = 0;
    weightedSumSkip(e.data(), rows.data(), count, d, d, 0.f, s,
                    acc.data(), kept, skipped);
    EXPECT_EQ(kept, count);
    EXPECT_EQ(skipped, 0u);
    double eref = 0.0;
    for (size_t i = 0; i < count; ++i)
        eref += e[i];
    EXPECT_NEAR(s, eref, 1e-6 * count);
}

TEST(DotBatchMulti, BitIdenticalToPerQueryDotBatch)
{
    // The query-blocked kernel's contract is exact: every (query, row)
    // dot must carry out the same accumulation order as the per-query
    // dotBatch sweep, so the outputs are bit-identical — whichever
    // backend dispatch resolved to.
    const size_t d = 129, stride = 133, xstride = 131;
    for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5),
                      size_t(8), size_t(9)}) {
        for (size_t count : {size_t(0), size_t(1), size_t(3), size_t(4),
                             size_t(5), size_t(17), size_t(64)}) {
            const size_t ostride = count + 2; // padded: catch strays
            const auto x = nastyVec(nq * xstride, 501);
            const auto rows = nastyVec(count * stride, 502);
            std::vector<float> got(nq * ostride, -9.f);
            std::vector<float> ref(nq * ostride, -9.f);

            dotBatchMulti(x.data(), nq, xstride, rows.data(), count, d,
                          stride, got.data(), ostride);
            for (size_t q = 0; q < nq; ++q)
                dotBatch(x.data() + q * xstride, rows.data(), count, d,
                         stride, ref.data() + q * ostride);

            for (size_t i = 0; i < got.size(); ++i)
                ASSERT_EQ(got[i], ref[i])
                    << "nq=" << nq << " count=" << count << " i=" << i;
        }
    }
}

TEST(WeightedSumSkipMulti, BitIdenticalToPerQuerySweep)
{
    // Same exactness contract for the query-blocked weighted sum:
    // per-(query,row) skip decisions, running sums, and accumulator
    // bits must match the per-query weightedSumSkip sweep. Batch
    // sizes cross the kWsumQueryTile dispatch split.
    const size_t d = 65, stride = 67;
    for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5),
                      kWsumQueryTile, kWsumQueryTile + 1,
                      2 * kWsumQueryTile + 1}) {
        for (float threshold : {0.0f, 0.05f, 0.5f}) {
            for (size_t count : {size_t(0), size_t(1), size_t(7),
                                 size_t(100)}) {
                const size_t estride = count + 3;
                const size_t accstride = d + 5;
                auto e = nastyVec(nq * estride, 503);
                for (float &v : e)
                    v = std::abs(v) + 1e-3f; // exp outputs are positive
                const auto rows = nastyVec(count * stride, 504);

                auto acc1 = nastyVec(nq * accstride, 505);
                auto acc2 = acc1;
                std::vector<double> s1(nq), s2(nq);
                for (size_t q = 0; q < nq; ++q)
                    s1[q] = s2[q] = 0.25 * double(q);
                uint64_t kept1 = 0, skip1 = 0, kept2 = 0, skip2 = 0;

                weightedSumSkipMulti(e.data(), nq, estride, rows.data(),
                                     count, d, stride, threshold,
                                     s1.data(), acc1.data(), accstride,
                                     kept1, skip1);
                for (size_t q = 0; q < nq; ++q)
                    weightedSumSkip(e.data() + q * estride, rows.data(),
                                    count, d, stride, threshold, s2[q],
                                    acc2.data() + q * accstride, kept2,
                                    skip2);

                ASSERT_EQ(kept1, kept2)
                    << "nq=" << nq << " th=" << threshold
                    << " count=" << count;
                ASSERT_EQ(skip1, skip2);
                ASSERT_EQ(kept1 + skip1, uint64_t(nq) * count);
                for (size_t q = 0; q < nq; ++q)
                    ASSERT_EQ(s1[q], s2[q]) << "nq=" << nq << " q=" << q;
                for (size_t i = 0; i < acc1.size(); ++i)
                    ASSERT_EQ(acc1[i], acc2[i])
                        << "nq=" << nq << " th=" << threshold
                        << " count=" << count << " i=" << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// bf16 storage kernels. These carry a stronger contract than the fp32
// kernels: the scalar and AVX2 backends implement the same canonical
// accumulation order, so the dispatched kernel must match the scalar
// reference BIT-FOR-BIT (not just within tolerance), on any host.
// ---------------------------------------------------------------------

/** nastyVec rounded to bf16 storage. */
std::vector<uint16_t>
nastyVecBf16(size_t n, uint64_t seed)
{
    const auto f = nastyVec(n, seed, 0);
    std::vector<uint16_t> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = bf16FromFloat(f[i]);
    return v;
}

TEST(Bf16Convert, RoundTripWithinRelativeBound)
{
    // Round-to-nearest-even on an 8-bit mantissa: the round-trip
    // error of any normal float is at most 2^-8 of its magnitude.
    const auto x = nastyVec(4096, 601, 0);
    for (float v : x) {
        const float rt = bf16ToFloat(bf16FromFloat(v));
        ASSERT_LE(std::abs(rt - v), std::abs(v) * 0x1p-8f) << "v=" << v;
    }
}

TEST(Bf16Convert, ExactValuesSurvive)
{
    // Values already representable in bf16 must round-trip exactly.
    for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f,
                    1.5f, 3.0f, 256.0f}) {
        const float rt = bf16ToFloat(bf16FromFloat(v));
        ASSERT_EQ(std::memcmp(&rt, &v, sizeof(float)), 0) << "v=" << v;
    }
}

TEST(Bf16Convert, SpecialsPropagate)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(bf16ToFloat(bf16FromFloat(inf)), inf);
    EXPECT_EQ(bf16ToFloat(bf16FromFloat(-inf)), -inf);
    EXPECT_TRUE(std::isnan(
        bf16ToFloat(bf16FromFloat(std::nanf("")))));
}

TEST(DotBatchMultiBf16, BitIdenticalToScalarReference)
{
    const size_t d_cases[] = {0, 1, 7, 8, 9, 15, 16, 17, 64, 129, 256};
    for (size_t d : d_cases) {
        const size_t stride = d + 3, xstride = d + 1;
        for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5),
                          size_t(8), size_t(9)}) {
            for (size_t count : {size_t(0), size_t(1), size_t(3),
                                 size_t(4), size_t(5), size_t(17),
                                 size_t(64)}) {
                const size_t ostride = count + 2;
                const auto x = nastyVec(nq * xstride, 611, 0);
                const auto rows = nastyVecBf16(count * stride, 612);
                std::vector<float> got(nq * ostride, -9.f);
                std::vector<float> ref(nq * ostride, -9.f);

                dotBatchMultiBf16(x.data(), nq, xstride, rows.data(),
                                  count, d, stride, got.data(), ostride);
                scalar::dotBatchMultiBf16(x.data(), nq, xstride,
                                          rows.data(), count, d, stride,
                                          ref.data(), ostride);

                for (size_t i = 0; i < got.size(); ++i)
                    ASSERT_EQ(got[i], ref[i])
                        << "d=" << d << " nq=" << nq
                        << " count=" << count << " i=" << i;
            }
        }
    }
}

TEST(DotBatchMultiBf16, MatchesWideningDoubleReference)
{
    // Accuracy (not just self-consistency): against a double-precision
    // dot over the upconverted rows the kernel is ordinary fp32
    // summation, so the usual O(d) rounding bound applies.
    const size_t d = 256, count = 33, nq = 4;
    const auto x = nastyVec(nq * d, 613, 0);
    const auto rows = nastyVecBf16(count * d, 614);
    std::vector<float> got(nq * count);
    dotBatchMultiBf16(x.data(), nq, d, rows.data(), count, d, d,
                      got.data(), count);
    for (size_t q = 0; q < nq; ++q) {
        for (size_t r = 0; r < count; ++r) {
            double ref = 0.0;
            for (size_t i = 0; i < d; ++i)
                ref += double(x[q * d + i])
                     * double(bf16ToFloat(rows[r * d + i]));
            ASSERT_NEAR(got[q * count + r], ref, 1e-5 * d)
                << "q=" << q << " r=" << r;
        }
    }
}

TEST(WeightedSumSkipMultiBf16, BitIdenticalToScalarReference)
{
    const size_t d = 65, stride = 67;
    for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5),
                      kWsumQueryTile, kWsumQueryTile + 1,
                      2 * kWsumQueryTile + 1}) {
        for (float threshold : {0.0f, 0.05f, 0.5f}) {
            for (size_t count : {size_t(0), size_t(1), size_t(7),
                                 size_t(100)}) {
                const size_t estride = count + 3;
                const size_t accstride = d + 5;
                auto e = nastyVec(nq * estride, 621, 0);
                for (float &v : e)
                    v = std::abs(v) + 1e-3f; // exp outputs are positive
                const auto rows = nastyVecBf16(count * stride, 622);

                auto acc1 = nastyVec(nq * accstride, 623, 0);
                auto acc2 = acc1;
                std::vector<double> s1(nq), s2(nq);
                for (size_t q = 0; q < nq; ++q)
                    s1[q] = s2[q] = 0.25 * double(q);
                uint64_t kept1 = 0, skip1 = 0, kept2 = 0, skip2 = 0;

                weightedSumSkipMultiBf16(
                    e.data(), nq, estride, rows.data(), count, d,
                    stride, threshold, s1.data(), acc1.data(),
                    accstride, kept1, skip1);
                // The scalar reference takes any ne; no tiling needed.
                scalar::weightedSumSkipMultiBf16(
                    e.data(), nq, estride, rows.data(), count, d,
                    stride, threshold, s2.data(), acc2.data(),
                    accstride, kept2, skip2);

                ASSERT_EQ(kept1, kept2)
                    << "nq=" << nq << " th=" << threshold
                    << " count=" << count;
                ASSERT_EQ(skip1, skip2);
                ASSERT_EQ(kept1 + skip1, uint64_t(nq) * count);
                for (size_t q = 0; q < nq; ++q)
                    ASSERT_EQ(s1[q], s2[q]) << "nq=" << nq << " q=" << q;
                for (size_t i = 0; i < acc1.size(); ++i)
                    ASSERT_EQ(acc1[i], acc2[i])
                        << "nq=" << nq << " th=" << threshold
                        << " count=" << count << " i=" << i;
            }
        }
    }
}

TEST(WeightedSumSkipMultiBf16, SkipDecisionsMatchFp32Kernel)
{
    // The skip test is scalar double arithmetic on the e values in
    // both precisions — rows never enter the decision — so kept and
    // skipped counts must agree exactly with the fp32 kernel on the
    // same e matrix.
    const size_t d = 32, count = 200, nq = 5;
    auto e = nastyVec(nq * count, 631, 0);
    for (float &v : e)
        v = std::abs(v) + 1e-3f;
    const auto rows16 = nastyVecBf16(count * d, 632);
    const auto rows32 = nastyVec(count * d, 633, 0);
    for (float threshold : {0.01f, 0.1f}) {
        std::vector<float> a1(nq * d, 0.f), a2(nq * d, 0.f);
        std::vector<double> s1(nq, 0.0), s2(nq, 0.0);
        uint64_t kept1 = 0, skip1 = 0, kept2 = 0, skip2 = 0;
        weightedSumSkipMultiBf16(e.data(), nq, count, rows16.data(),
                                 count, d, d, threshold, s1.data(),
                                 a1.data(), d, kept1, skip1);
        weightedSumSkipMulti(e.data(), nq, count, rows32.data(), count,
                             d, d, threshold, s2.data(), a2.data(), d,
                             kept2, skip2);
        ASSERT_EQ(kept1, kept2) << "th=" << threshold;
        ASSERT_EQ(skip1, skip2) << "th=" << threshold;
        for (size_t q = 0; q < nq; ++q)
            ASSERT_EQ(s1[q], s2[q]) << "q=" << q;
    }
}

// ---------------------------------------------------------------------
// int8 storage kernels. Same bit-for-bit contract as bf16: the scalar
// and AVX2 backends implement one canonical accumulation order, so the
// dispatched kernel must match the scalar reference exactly. The
// (scale, zero) pair is applied in the factored form documented in
// kernels.hh, so results are additionally invariant to splitting a row
// sweep into multiple calls — the property the engines rely on when
// they cut sweeps at quantization-group boundaries.
// ---------------------------------------------------------------------

/** Deterministic int8 rows covering the full [-128, 127] range. */
std::vector<int8_t>
nastyVecI8(size_t n, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<int8_t> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = static_cast<int8_t>(static_cast<int>(rng.below(256)) - 128);
    return v;
}

TEST(DotBatchMultiI8, BitIdenticalToScalarReference)
{
    const float scale = 0.0123f, zero = -0.456f;
    const size_t d_cases[] = {0, 1, 7, 8, 9, 15, 16, 17, 64, 129, 256};
    for (size_t d : d_cases) {
        const size_t stride = d + 3, xstride = d + 1;
        for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5),
                          size_t(8), size_t(9)}) {
            for (size_t count : {size_t(0), size_t(1), size_t(3),
                                 size_t(4), size_t(5), size_t(17),
                                 size_t(64)}) {
                const size_t ostride = count + 2;
                const auto x = nastyVec(nq * xstride, 641, 0);
                const auto rows = nastyVecI8(count * stride, 642);
                std::vector<float> got(nq * ostride, -9.f);
                std::vector<float> ref(nq * ostride, -9.f);

                dotBatchMultiI8(x.data(), nq, xstride, rows.data(),
                                count, d, stride, scale, zero,
                                got.data(), ostride);
                scalar::dotBatchMultiI8(x.data(), nq, xstride,
                                        rows.data(), count, d, stride,
                                        scale, zero, ref.data(),
                                        ostride);

                for (size_t i = 0; i < got.size(); ++i)
                    ASSERT_EQ(got[i], ref[i])
                        << "d=" << d << " nq=" << nq
                        << " count=" << count << " i=" << i;
            }
        }
    }
}

TEST(DotBatchMultiI8, MatchesWideningDoubleReference)
{
    // Accuracy against a double-precision dot over the dequantized
    // rows: the kernel computes fma(scale, rawdot, zero * qsum) with
    // fp32 rawdot/qsum accumulation, so the usual O(d) rounding bound
    // applies — scaled by the row magnitudes (|q| <= 128).
    const size_t d = 256, count = 33, nq = 4;
    const float scale = 0.0123f, zero = -0.456f;
    const auto x = nastyVec(nq * d, 643, 0);
    const auto rows = nastyVecI8(count * d, 644);
    std::vector<float> got(nq * count);
    dotBatchMultiI8(x.data(), nq, d, rows.data(), count, d, d, scale,
                    zero, got.data(), count);
    for (size_t q = 0; q < nq; ++q) {
        for (size_t r = 0; r < count; ++r) {
            double ref = 0.0;
            for (size_t i = 0; i < d; ++i)
                ref += double(x[q * d + i])
                     * (double(scale) * rows[r * d + i] + double(zero));
            ASSERT_NEAR(got[q * count + r], ref, 1e-4 * d)
                << "q=" << q << " r=" << r;
        }
    }
}

TEST(DotBatchMultiI8, RowSweepSplitInvariant)
{
    // One call over [0, count) must equal a call over [0, c) plus a
    // call over [c, count) at ANY split point: scores are per-(q, r)
    // independent. The engines rely on this when they split sweeps at
    // quantization-group boundaries.
    const size_t d = 129, count = 37, nq = 5;
    const float scale = 0.017f, zero = 0.31f;
    const auto x = nastyVec(nq * d, 645, 0);
    const auto rows = nastyVecI8(count * d, 646);
    std::vector<float> whole(nq * count, -9.f);
    dotBatchMultiI8(x.data(), nq, d, rows.data(), count, d, d, scale,
                    zero, whole.data(), count);
    for (size_t c : {size_t(1), size_t(4), size_t(13), size_t(36)}) {
        std::vector<float> split(nq * count, -9.f);
        dotBatchMultiI8(x.data(), nq, d, rows.data(), c, d, d, scale,
                        zero, split.data(), count);
        dotBatchMultiI8(x.data(), nq, d, rows.data() + c * d,
                        count - c, d, d, scale, zero, split.data() + c,
                        count);
        for (size_t i = 0; i < whole.size(); ++i)
            ASSERT_EQ(split[i], whole[i]) << "c=" << c << " i=" << i;
    }
}

TEST(WeightedSumSkipMultiI8, BitIdenticalToScalarReference)
{
    const size_t d = 65, stride = 67;
    const float scale = 0.0123f, zero = -0.456f;
    for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5),
                      kWsumQueryTile, kWsumQueryTile + 1,
                      2 * kWsumQueryTile + 1}) {
        for (float threshold : {0.0f, 0.05f, 0.5f}) {
            for (size_t count : {size_t(0), size_t(1), size_t(7),
                                 size_t(100)}) {
                const size_t estride = count + 3;
                const size_t accstride = d + 5;
                auto e = nastyVec(nq * estride, 651, 0);
                for (float &v : e)
                    v = std::abs(v) + 1e-3f; // exp outputs are positive
                const auto rows = nastyVecI8(count * stride, 652);

                auto acc1 = nastyVec(nq * accstride, 653, 0);
                auto acc2 = acc1;
                std::vector<double> s1(nq), s2(nq);
                for (size_t q = 0; q < nq; ++q)
                    s1[q] = s2[q] = 0.25 * double(q);
                uint64_t kept1 = 0, skip1 = 0, kept2 = 0, skip2 = 0;

                weightedSumSkipMultiI8(
                    e.data(), nq, estride, rows.data(), count, d,
                    stride, scale, zero, threshold, s1.data(),
                    acc1.data(), accstride, kept1, skip1);
                // The scalar reference takes any ne; no tiling needed.
                scalar::weightedSumSkipMultiI8(
                    e.data(), nq, estride, rows.data(), count, d,
                    stride, scale, zero, threshold, s2.data(),
                    acc2.data(), accstride, kept2, skip2);

                ASSERT_EQ(kept1, kept2)
                    << "nq=" << nq << " th=" << threshold
                    << " count=" << count;
                ASSERT_EQ(skip1, skip2);
                ASSERT_EQ(kept1 + skip1, uint64_t(nq) * count);
                for (size_t q = 0; q < nq; ++q)
                    ASSERT_EQ(s1[q], s2[q]) << "nq=" << nq << " q=" << q;
                for (size_t i = 0; i < acc1.size(); ++i)
                    ASSERT_EQ(acc1[i], acc2[i])
                        << "nq=" << nq << " th=" << threshold
                        << " count=" << count << " i=" << i;
            }
        }
    }
}

TEST(WeightedSumSkipMultiI8, SkipDecisionsMatchFp32Kernel)
{
    // The skip test is scalar double arithmetic on the e values in
    // both precisions — rows never enter the decision — so kept and
    // skipped counts must agree exactly with the fp32 kernel on the
    // same e matrix.
    const size_t d = 32, count = 200, nq = 5;
    auto e = nastyVec(nq * count, 661, 0);
    for (float &v : e)
        v = std::abs(v) + 1e-3f;
    const auto rows8 = nastyVecI8(count * d, 662);
    const auto rows32 = nastyVec(count * d, 663, 0);
    for (float threshold : {0.01f, 0.1f}) {
        std::vector<float> a1(nq * d, 0.f), a2(nq * d, 0.f);
        std::vector<double> s1(nq, 0.0), s2(nq, 0.0);
        uint64_t kept1 = 0, skip1 = 0, kept2 = 0, skip2 = 0;
        weightedSumSkipMultiI8(e.data(), nq, count, rows8.data(), count,
                               d, d, 0.01f, -0.2f, threshold, s1.data(),
                               a1.data(), d, kept1, skip1);
        weightedSumSkipMulti(e.data(), nq, count, rows32.data(), count,
                             d, d, threshold, s2.data(), a2.data(), d,
                             kept2, skip2);
        ASSERT_EQ(kept1, kept2) << "th=" << threshold;
        ASSERT_EQ(skip1, skip2) << "th=" << threshold;
        for (size_t q = 0; q < nq; ++q)
            ASSERT_EQ(s1[q], s2[q]) << "q=" << q;
    }
}

TEST(WeightedSumSkipMultiI8, RowSweepSplitInvariant)
{
    // Splitting the row range into consecutive calls (threading the
    // running sums through) must reproduce the single-call result
    // exactly: rows are processed in ascending order and the skip
    // state is entirely in running_sums.
    const size_t d = 48, count = 61, nq = 3;
    const float scale = 0.02f, zero = 0.1f, threshold = 0.05f;
    auto e = nastyVec(nq * count, 671, 0);
    for (float &v : e)
        v = std::abs(v) + 1e-3f;
    const auto rows = nastyVecI8(count * d, 672);

    std::vector<float> a1(nq * d, 0.f);
    std::vector<double> s1(nq, 0.0);
    uint64_t kept1 = 0, skip1 = 0;
    weightedSumSkipMultiI8(e.data(), nq, count, rows.data(), count, d,
                           d, scale, zero, threshold, s1.data(),
                           a1.data(), d, kept1, skip1);

    for (size_t c : {size_t(1), size_t(8), size_t(30), size_t(60)}) {
        std::vector<float> a2(nq * d, 0.f);
        std::vector<double> s2(nq, 0.0);
        uint64_t kept2 = 0, skip2 = 0;
        weightedSumSkipMultiI8(e.data(), nq, count, rows.data(), c, d,
                               d, scale, zero, threshold, s2.data(),
                               a2.data(), d, kept2, skip2);
        weightedSumSkipMultiI8(e.data() + c, nq, count,
                               rows.data() + c * d, count - c, d, d,
                               scale, zero, threshold, s2.data(),
                               a2.data(), d, kept2, skip2);
        ASSERT_EQ(kept2, kept1) << "c=" << c;
        ASSERT_EQ(skip2, skip1) << "c=" << c;
        for (size_t q = 0; q < nq; ++q)
            ASSERT_EQ(s2[q], s1[q]) << "c=" << c << " q=" << q;
        for (size_t i = 0; i < a1.size(); ++i)
            ASSERT_EQ(a2[i], a1[i]) << "c=" << c << " i=" << i;
    }
}

TEST(GemmSimd, MatchesScalarAcrossShapes)
{
    const GemmDims shapes[] = {{1, 1, 1},   {2, 3, 15},  {4, 8, 16},
                               {5, 257, 17}, {13, 48, 31}, {16, 300, 64},
                               {33, 64, 100}};
    for (const auto &[m, k, n] : shapes) {
        const auto a = nastyVec(m * k, 401);
        const auto b = nastyVec(k * n, 402);
        std::vector<float> c1(m * n, 7.f), c2(m * n, 7.f);
        gemm(a.data(), b.data(), c1.data(), m, k, n);
        scalar::gemm(a.data(), b.data(), c2.data(), m, k, n, false);
        for (size_t i = 0; i < m * n; ++i) {
            ASSERT_NEAR(c1[i], c2[i], 1e-5f * k)
                << m << "x" << k << "x" << n << " i=" << i;
        }
        // accumulate=true on top of existing C
        std::vector<float> d1(m * n, 0.5f), d2(m * n, 0.5f);
        gemm(a.data(), b.data(), d1.data(), m, k, n, true);
        scalar::gemm(a.data(), b.data(), d2.data(), m, k, n, true);
        for (size_t i = 0; i < m * n; ++i) {
            ASSERT_NEAR(d1[i], d2[i], 1e-5f * k)
                << m << "x" << k << "x" << n << " i=" << i;
        }
    }
}

} // namespace
} // namespace mnnfast::blas
