/**
 * @file
 * Tests for the set-associative cache model: hit/miss behaviour, LRU
 * replacement, associativity conflicts, bypass mode, and statistics.
 */

#include <gtest/gtest.h>

#include "sim/cache_model.hh"

namespace mnnfast::sim {
namespace {

CacheConfig
smallCache(size_t size_bytes = 4096, size_t assoc = 2,
           size_t line = 64)
{
    CacheConfig cfg;
    cfg.sizeBytes = size_bytes;
    cfg.associativity = assoc;
    cfg.lineBytes = line;
    return cfg;
}

TEST(CacheModel, GeometryIsDerivedCorrectly)
{
    CacheModel c(smallCache(4096, 2, 64));
    // 4096 / 64 = 64 lines; 2-way => 32 sets.
    EXPECT_EQ(c.sets(), 32u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(CacheModel, FirstAccessMissesSecondHits)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same 64B line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheModel, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup)
{
    CacheModel c(smallCache(8192, 4));
    // 8 KiB working set in an 8 KiB cache.
    for (uint64_t a = 0; a < 8192; a += 64)
        c.access(a);
    const uint64_t misses_before = c.misses();
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t a = 0; a < 8192; a += 64)
            EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.misses(), misses_before);
}

TEST(CacheModel, StreamLargerThanCacheAlwaysMisses)
{
    CacheModel c(smallCache(4096, 2));
    // 64 KiB circular stream through a 4 KiB cache: with true LRU,
    // every access of every pass misses.
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < 65536; a += 64)
            c.access(a);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 2048u);
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    // Direct construction of a conflict set: addresses that map to
    // set 0 of a 2-way cache with 32 sets stride by 32*64 = 2048.
    CacheModel c(smallCache(4096, 2));
    const uint64_t s = 2048;
    c.access(0 * s); // A
    c.access(1 * s); // B
    c.access(0 * s); // A again (B is now LRU)
    c.access(2 * s); // C evicts B
    EXPECT_TRUE(c.probe(0 * s));
    EXPECT_FALSE(c.probe(1 * s));
    EXPECT_TRUE(c.probe(2 * s));
}

TEST(CacheModel, AssociativityBoundsConflictMisses)
{
    // 4 conflicting lines in a 2-way set thrash; in a 4-way set they
    // all fit.
    CacheModel two_way(smallCache(4096, 2));
    CacheModel four_way(smallCache(4096, 4));
    const uint64_t stride2 = two_way.sets() * 64;
    const uint64_t stride4 = four_way.sets() * 64;
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t i = 0; i < 4; ++i) {
            two_way.access(i * stride2);
            four_way.access(i * stride4);
        }
    }
    EXPECT_EQ(four_way.misses(), 4u); // cold only
    EXPECT_GT(two_way.misses(), four_way.misses());
}

TEST(CacheModel, NoAllocateDoesNotFill)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.accessNoAllocate(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    // A normal access fills; then no-allocate hits.
    c.access(0x2000);
    EXPECT_TRUE(c.accessNoAllocate(0x2000));
}

TEST(CacheModel, WritebacksCountDirtyEvictions)
{
    CacheModel c(smallCache(4096, 2));
    const uint64_t s = 2048;
    c.access(0 * s, /*is_write=*/true);
    c.access(1 * s);
    c.access(2 * s); // evicts the dirty line 0
    c.access(3 * s); // evicts clean line 1
    EXPECT_EQ(c.counters().value("writebacks"), 1u);
    EXPECT_EQ(c.counters().value("evictions"), 2u);
}

TEST(CacheModel, FlushInvalidatesEverything)
{
    CacheModel c(smallCache());
    c.access(0x3000);
    c.flush();
    EXPECT_FALSE(c.probe(0x3000));
    EXPECT_FALSE(c.access(0x3000));
}

TEST(CacheModel, BadGeometryIsFatal)
{
    CacheConfig cfg = smallCache();
    cfg.lineBytes = 48; // not a power of two
    EXPECT_EXIT(CacheModel c(cfg), ::testing::ExitedWithCode(1),
                "power of two");

    CacheConfig cfg2 = smallCache();
    cfg2.sizeBytes = 0;
    EXPECT_EXIT(CacheModel c2(cfg2), ::testing::ExitedWithCode(1),
                "divisible");
}

} // namespace
} // namespace mnnfast::sim
