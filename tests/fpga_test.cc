/**
 * @file
 * Tests for the FPGA accelerator model: functional correctness against
 * the CPU engines, cycle-count orderings across the optimization
 * ladder (paper Fig. 13), the embedding cache (Fig. 14), DDR3 cost
 * model, and the energy comparison (Section 5.5).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/column_engine.hh"
#include "data/zipf.hh"
#include "fpga/accelerator.hh"
#include "fpga/embedding_cache.hh"
#include "fpga/energy_model.hh"
#include "util/rng.hh"

namespace mnnfast::fpga {
namespace {

core::KnowledgeBase
randomKb(size_t ns, size_t ed, uint64_t seed)
{
    core::KnowledgeBase kb(ed);
    mnnfast::XorShiftRng rng(seed);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

FpgaConfig
paperConfig()
{
    FpgaConfig cfg; // Table 1 FPGA column: ed 25, ns 1000, chunk 25
    return cfg;
}

TEST(EmbeddingCache, EntryCountFromGeometry)
{
    EmbeddingCacheConfig cfg;
    cfg.sizeBytes = 32 << 10;
    cfg.embeddingDim = 256; // 1 KiB per entry
    EmbeddingCache cache(cfg);
    EXPECT_EQ(cache.entries(), 32u);
}

TEST(EmbeddingCache, HitAfterFill)
{
    EmbeddingCacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.embeddingDim = 16; // 64 entries
    EmbeddingCache cache(cfg);
    EXPECT_FALSE(cache.lookup(5));
    EXPECT_TRUE(cache.lookup(5));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(EmbeddingCache, DirectMappedConflictEvicts)
{
    EmbeddingCacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.embeddingDim = 16; // 64 entries
    EmbeddingCache cache(cfg);
    cache.lookup(3);
    cache.lookup(3 + 64); // same slot, evicts word 3
    EXPECT_FALSE(cache.probe(3));
    EXPECT_TRUE(cache.probe(3 + 64));
}

TEST(EmbeddingCache, FlushInvalidates)
{
    EmbeddingCacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.embeddingDim = 4;
    EmbeddingCache cache(cfg);
    cache.lookup(1);
    cache.flush();
    EXPECT_FALSE(cache.probe(1));
}

TEST(EmbeddingCache, ZipfStreamHitRateGrowsWithCapacity)
{
    // Paper Fig. 14 mechanism: bigger cache -> higher hit rate under
    // a word-frequency (Zipf) stream.
    data::ZipfGenerator zipf(10000, 1.0, 7);
    std::vector<data::WordId> stream(50000);
    for (auto &w : stream)
        w = static_cast<data::WordId>(zipf.sample());

    double prev = 0.0;
    for (size_t kb : {32ul, 64ul, 128ul, 256ul}) {
        EmbeddingCacheConfig cfg;
        cfg.sizeBytes = kb << 10;
        cfg.embeddingDim = 256;
        EmbeddingCache cache(cfg);
        for (data::WordId w : stream)
            cache.lookup(w);
        EXPECT_GT(cache.hitRate(), prev) << kb << "KB";
        prev = cache.hitRate();
    }
    EXPECT_GT(prev, 0.3); // 256KB must capture the hot head
}

TEST(Ddr3Model, BurstCostIsLatencyPlusTransfer)
{
    Ddr3Config cfg;
    cfg.bytesPerCycle = 32.0;
    cfg.latencyCycles = 10;
    Ddr3Model ddr(cfg);
    EXPECT_EQ(ddr.burstCycles(64), 10u + 2u);
    EXPECT_EQ(ddr.totalBytes(), 64u);
    EXPECT_EQ(ddr.bursts(), 1u);
    EXPECT_DOUBLE_EQ(ddr.streamCycles(320), 10.0);
}

TEST(Accelerator, ColumnOutputMatchesCpuColumnEngine)
{
    const size_t ns = 1000, ed = 25, nq = 3;
    const core::KnowledgeBase kb = randomKb(ns, ed, 1);
    mnnfast::XorShiftRng rng(2);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.5f, 0.5f);

    core::EngineConfig ecfg;
    ecfg.chunkSize = 25;
    core::ColumnEngine cpu(kb, ecfg);
    std::vector<float> o_cpu(nq * ed);
    cpu.inferBatch(u.data(), nq, o_cpu.data());

    FpgaAccelerator fpga(paperConfig());
    std::vector<float> o_fpga(nq * ed);
    fpga.runInference(u.data(), nq, kb, o_fpga.data());

    for (size_t i = 0; i < o_cpu.size(); ++i)
        ASSERT_NEAR(o_cpu[i], o_fpga[i], 1e-4);
}

TEST(Accelerator, BaselineOutputMatchesColumnOutput)
{
    const size_t ns = 500, ed = 25, nq = 2;
    const core::KnowledgeBase kb = randomKb(ns, ed, 3);
    mnnfast::XorShiftRng rng(4);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.5f, 0.5f);

    FpgaConfig base_cfg = paperConfig();
    base_cfg.columnMode = false;
    FpgaAccelerator baseline(base_cfg);
    std::vector<float> o_base(nq * ed);
    baseline.runInference(u.data(), nq, kb, o_base.data());

    FpgaAccelerator column(paperConfig());
    std::vector<float> o_col(nq * ed);
    column.runInference(u.data(), nq, kb, o_col.data());

    for (size_t i = 0; i < o_base.size(); ++i)
        ASSERT_NEAR(o_base[i], o_col[i], 1e-4);
}

TEST(Accelerator, OptimizationLadderReducesCycles)
{
    // Fig. 13 ordering: baseline > column > column+streaming >
    // MnnFast (with zero-skipping).
    const size_t ns = 1000, ed = 25, nq = 4;
    const core::KnowledgeBase kb = randomKb(ns, ed, 5);
    mnnfast::XorShiftRng rng(6);
    std::vector<float> u(nq * ed), o(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.5f, 0.5f);

    FpgaConfig cfg = paperConfig();
    cfg.columnMode = false;
    const auto base =
        FpgaAccelerator(cfg).runInference(u.data(), nq, kb, o.data());

    cfg.columnMode = true;
    const auto col =
        FpgaAccelerator(cfg).runInference(u.data(), nq, kb, o.data());

    cfg.streaming = true;
    const auto str =
        FpgaAccelerator(cfg).runInference(u.data(), nq, kb, o.data());

    cfg.skipThreshold = 1.0f; // exp-domain: skips e < 1 (dot < 0)
    const auto mnn =
        FpgaAccelerator(cfg).runInference(u.data(), nq, kb, o.data());

    EXPECT_LT(col.totalCycles, base.totalCycles);
    EXPECT_LT(str.totalCycles, col.totalCycles);
    EXPECT_LT(mnn.totalCycles, str.totalCycles);
    EXPECT_GT(mnn.wsumRowsSkipped, 0u);
    EXPECT_EQ(mnn.wsumRowsSkipped + mnn.wsumRowsKept,
              uint64_t(ns) * nq);
}

TEST(Accelerator, ColumnMovesFarFewerDdrBytesThanBaseline)
{
    const size_t ns = 1000, ed = 25;
    const core::KnowledgeBase kb = randomKb(ns, ed, 7);
    std::vector<float> u(ed, 0.1f), o(ed);

    FpgaConfig cfg = paperConfig();
    cfg.columnMode = false;
    const auto base =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());
    cfg.columnMode = true;
    const auto col =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());

    // Baseline spills T_IN/P_exp/P to DDR; column only streams
    // M_IN/M_OUT.
    EXPECT_EQ(col.ddrBytes, 2ull * ns * ed * sizeof(float));
    EXPECT_GT(base.ddrBytes, col.ddrBytes);
}

TEST(Accelerator, StreamingOverlapsMemoryWithCompute)
{
    const size_t ns = 1000, ed = 25;
    const core::KnowledgeBase kb = randomKb(ns, ed, 8);
    std::vector<float> u(ed, 0.1f), o(ed);

    FpgaConfig cfg = paperConfig();
    const auto blocking =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());
    cfg.streaming = true;
    const auto streaming =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());

    EXPECT_LT(streaming.totalCycles, blocking.totalCycles);
    // Blocking total is exactly memory + compute; streaming must beat
    // the sum but cannot beat max(memory, compute).
    EXPECT_EQ(blocking.totalCycles,
              blocking.memoryCycles + blocking.computeCycles);
    EXPECT_GE(streaming.totalCycles,
              std::max(blocking.memoryCycles, blocking.computeCycles)
                  / 2);
}

TEST(Accelerator, EmbeddingPhaseFasterWithCache)
{
    FpgaConfig cfg = paperConfig();
    cfg.embeddingDim = 256;

    data::ZipfGenerator zipf(5000, 1.0, 9);
    std::vector<data::Sentence> sentences(200);
    for (auto &s : sentences) {
        s.resize(8);
        for (auto &w : s)
            w = static_cast<data::WordId>(zipf.sample());
    }

    FpgaAccelerator fpga(cfg);
    const auto no_cache = fpga.runEmbedding(sentences, nullptr);

    EmbeddingCacheConfig ccfg;
    ccfg.sizeBytes = 128 << 10;
    ccfg.embeddingDim = 256;
    EmbeddingCache cache(ccfg);
    const auto cached = fpga.runEmbedding(sentences, &cache);

    EXPECT_EQ(no_cache.words, cached.words);
    EXPECT_LT(cached.cycles, no_cache.cycles);
    EXPECT_GT(cached.cacheHits, 0u);
}

TEST(Accelerator, EmbeddingLatencyMonotoneInCacheSize)
{
    FpgaConfig cfg = paperConfig();
    cfg.embeddingDim = 256;
    FpgaAccelerator fpga(cfg);

    data::ZipfGenerator zipf(10000, 1.0, 10);
    std::vector<data::Sentence> sentences(500);
    for (auto &s : sentences) {
        s.resize(8);
        for (auto &w : s)
            w = static_cast<data::WordId>(zipf.sample());
    }

    uint64_t prev = ~uint64_t{0};
    for (size_t kb : {32ul, 64ul, 128ul, 256ul}) {
        EmbeddingCacheConfig ccfg;
        ccfg.sizeBytes = kb << 10;
        ccfg.embeddingDim = 256;
        EmbeddingCache cache(ccfg);
        const auto r = fpga.runEmbedding(sentences, &cache);
        EXPECT_LT(r.cycles, prev) << kb << "KB";
        prev = r.cycles;
    }
}

TEST(Accelerator, BatchModeMatchesSequentialOutputs)
{
    const size_t ns = 600, ed = 25, nq = 5;
    const core::KnowledgeBase kb = randomKb(ns, ed, 21);
    mnnfast::XorShiftRng rng(22);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.5f, 0.5f);

    FpgaConfig seq_cfg = paperConfig();
    std::vector<float> o_seq(nq * ed);
    FpgaAccelerator(seq_cfg).runInference(u.data(), nq, kb,
                                          o_seq.data());

    FpgaConfig batch_cfg = paperConfig();
    batch_cfg.batchQuestions = true;
    std::vector<float> o_batch(nq * ed);
    FpgaAccelerator(batch_cfg).runInference(u.data(), nq, kb,
                                            o_batch.data());

    for (size_t i = 0; i < o_seq.size(); ++i)
        ASSERT_NEAR(o_seq[i], o_batch[i], 1e-4);
}

TEST(Accelerator, BatchModeAmortizesDdrTraffic)
{
    const size_t ns = 1000, ed = 25, nq = 8;
    const core::KnowledgeBase kb = randomKb(ns, ed, 23);
    std::vector<float> u(nq * ed, 0.1f), o(nq * ed);

    FpgaConfig seq_cfg = paperConfig();
    const auto seq = FpgaAccelerator(seq_cfg).runInference(
        u.data(), nq, kb, o.data());

    FpgaConfig batch_cfg = paperConfig();
    batch_cfg.batchQuestions = true;
    const auto batch = FpgaAccelerator(batch_cfg).runInference(
        u.data(), nq, kb, o.data());

    // Sequential mode re-streams the KB per question; batch mode
    // loads it once.
    EXPECT_EQ(seq.ddrBytes, uint64_t(nq) * 2 * ns * ed * 4);
    EXPECT_EQ(batch.ddrBytes, 2ull * ns * ed * 4);
    EXPECT_LT(batch.totalCycles, seq.totalCycles);
}

TEST(Accelerator, BatchModeSkipCountsMatchSequential)
{
    const size_t ns = 500, ed = 25, nq = 4;
    const core::KnowledgeBase kb = randomKb(ns, ed, 24);
    std::vector<float> u(nq * ed, 0.2f), o(nq * ed);

    FpgaConfig cfg = paperConfig();
    cfg.skipThreshold = 1.0f;
    const auto seq =
        FpgaAccelerator(cfg).runInference(u.data(), nq, kb, o.data());
    cfg.batchQuestions = true;
    const auto batch =
        FpgaAccelerator(cfg).runInference(u.data(), nq, kb, o.data());

    EXPECT_EQ(seq.wsumRowsKept, batch.wsumRowsKept);
    EXPECT_EQ(seq.wsumRowsSkipped, batch.wsumRowsSkipped);
}

TEST(Accelerator, StreamOverlapEfficiencyBoundsStreamingGain)
{
    const size_t ns = 1000, ed = 25;
    const core::KnowledgeBase kb = randomKb(ns, ed, 25);
    std::vector<float> u(ed, 0.1f), o(ed);

    FpgaConfig cfg = paperConfig();
    const auto blocking =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());

    cfg.streaming = true;
    cfg.streamOverlapEff = 0.0; // no overlap achieved
    const auto none =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());
    cfg.streamOverlapEff = 1.0; // perfect double buffering
    const auto perfect =
        FpgaAccelerator(cfg).runInference(u.data(), 1, kb, o.data());

    // eff=0 degenerates to blocking; eff=1 is the max() bound.
    EXPECT_EQ(none.totalCycles, blocking.totalCycles);
    EXPECT_LT(perfect.totalCycles, blocking.totalCycles);
    EXPECT_GE(perfect.totalCycles,
              std::max(blocking.memoryCycles, blocking.computeCycles));
}

TEST(Accelerator, MismatchedKbDimPanics)
{
    const core::KnowledgeBase kb = randomKb(10, 16, 11);
    FpgaConfig cfg = paperConfig(); // ed 25
    FpgaAccelerator fpga(cfg);
    std::vector<float> u(16, 0.f), o(16);
    EXPECT_DEATH(fpga.runInference(u.data(), 1, kb, o.data()),
                 "mismatch");
}

TEST(EnergyModel, RatioReflectsPowerAndTime)
{
    EnergyConfig cfg;
    cfg.cpuWatts = 170.0;
    cfg.fpgaWatts = 2.6;
    EnergyModel em(cfg);
    EXPECT_DOUBLE_EQ(em.cpuJoules(2.0), 340.0);
    EXPECT_DOUBLE_EQ(em.fpgaJoules(2.0), 5.2);
    // Same time on both -> ratio is the power ratio.
    EXPECT_NEAR(em.efficiencyGain(1.0, 1.0), 170.0 / 2.6, 1e-9);
    // FPGA 10x slower still wins by ~6.5x.
    EXPECT_NEAR(em.efficiencyGain(1.0, 10.0), 170.0 / 26.0, 1e-9);
}

} // namespace
} // namespace mnnfast::fpga
