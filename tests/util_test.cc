/**
 * @file
 * Unit tests for src/util: RNG determinism and distribution sanity,
 * timers, aligned buffers, logging levels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <thread>

#include "util/aligned_buffer.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/timer.hh"

namespace mnnfast {
namespace {

TEST(XorShiftRng, DeterministicForSameSeed)
{
    XorShiftRng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(XorShiftRng, DifferentSeedsDiverge)
{
    XorShiftRng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(XorShiftRng, ZeroSeedIsRemapped)
{
    XorShiftRng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(XorShiftRng, UniformInUnitInterval)
{
    XorShiftRng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(XorShiftRng, UniformRangeRespectsBounds)
{
    XorShiftRng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniformRange(-2.5f, 7.5f);
        ASSERT_GE(v, -2.5f);
        ASSERT_LT(v, 7.5f);
    }
}

TEST(XorShiftRng, BelowCoversAllResidues)
{
    XorShiftRng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(XorShiftRng, GaussianMomentsAreSane)
{
    XorShiftRng rng(13);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(XorShiftRng, ChanceProbabilityMatches)
{
    XorShiftRng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.02);
}

TEST(XorShiftRng, SplitStreamsAreIndependent)
{
    XorShiftRng parent(21);
    XorShiftRng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_EQ(same, 0);
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double s = t.seconds();
    EXPECT_GE(s, 0.015);
    EXPECT_LT(s, 5.0);
}

TEST(Timer, ResetRestartsFromZero)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.reset();
    EXPECT_LT(t.seconds(), 0.015);
}

TEST(PhaseTimer, AccumulatesIntervals)
{
    PhaseTimer pt;
    for (int i = 0; i < 3; ++i) {
        pt.start();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        pt.stop();
    }
    EXPECT_GE(pt.seconds(), 0.010);
    pt.clear();
    EXPECT_EQ(pt.seconds(), 0.0);
}

TEST(PhaseTimer, StopWithoutStartIsNoOp)
{
    PhaseTimer pt;
    pt.stop();
    EXPECT_EQ(pt.seconds(), 0.0);
}

TEST(AlignedBuffer, IsCacheLineAligned)
{
    AlignedBuffer<float> buf(100);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
}

TEST(AlignedBuffer, ZeroInitialized)
{
    AlignedBuffer<float> buf(1000);
    for (float v : buf)
        ASSERT_EQ(v, 0.0f);
}

TEST(AlignedBuffer, SizeAndIndexing)
{
    AlignedBuffer<int> buf(10);
    EXPECT_EQ(buf.size(), 10u);
    buf[3] = 42;
    EXPECT_EQ(buf[3], 42);
}

TEST(AlignedBuffer, MoveTransfersOwnership)
{
    AlignedBuffer<float> a(16);
    a[0] = 3.0f;
    float *p = a.data();
    AlignedBuffer<float> b(std::move(a));
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b[0], 3.0f);
    EXPECT_EQ(a.size(), 0u);
    EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, MoveAssignReleasesOld)
{
    AlignedBuffer<float> a(16), b(8);
    a[1] = 5.0f;
    b = std::move(a);
    EXPECT_EQ(b.size(), 16u);
    EXPECT_EQ(b[1], 5.0f);
}

TEST(AlignedBuffer, EmptyBufferIsSafe)
{
    AlignedBuffer<float> buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.begin(), buf.end());
}

TEST(AlignedBuffer, ReallocateDiscardsAndZeroes)
{
    AlignedBuffer<float> buf(4);
    buf[0] = 9.0f;
    buf.allocate(32);
    EXPECT_EQ(buf.size(), 32u);
    for (float v : buf)
        ASSERT_EQ(v, 0.0f);
}

TEST(Logging, LevelRoundTrips)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(old);
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("test panic %d", 1), "panic");
}

TEST(Logging, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("test fatal"), ::testing::ExitedWithCode(1),
                "fatal");
}

TEST(Logging, AssertMacroPanicsOnFailure)
{
    EXPECT_DEATH(mnn_assert(1 == 2, "math broke"), "math broke");
}

TEST(Logging, AssertMacroPassesOnSuccess)
{
    mnn_assert(1 == 1, "fine");
    SUCCEED();
}

} // namespace
} // namespace mnnfast
