/**
 * @file
 * Tests for the thread pool and parallel-for runtime, including the
 * inline (0-thread) mode used by single-thread benchmarks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/kernel_tuner.hh"
#include "runtime/parallel_for.hh"
#include "runtime/scratch_arena.hh"
#include "runtime/thread_pool.hh"
#include "util/aligned_buffer.hh"

namespace mnnfast::runtime {
namespace {

TEST(SplitRange, EmptyInputGivesNoRanges)
{
    EXPECT_TRUE(splitRange(0, 4).empty());
}

TEST(SplitRange, FewerItemsThanParts)
{
    const auto r = splitRange(3, 8);
    ASSERT_EQ(r.size(), 3u);
    for (const Range &x : r)
        EXPECT_EQ(x.size(), 1u);
}

class SplitRangeProperty
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{};

TEST_P(SplitRangeProperty, CoversExactlyOnceAndBalanced)
{
    const auto [n, parts] = GetParam();
    const auto ranges = splitRange(n, parts);

    // Contiguous, ordered, covering [0, n).
    size_t expected_begin = 0;
    size_t min_size = n, max_size = 0;
    for (const Range &r : ranges) {
        EXPECT_EQ(r.begin, expected_begin);
        EXPECT_GT(r.end, r.begin);
        expected_begin = r.end;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
    }
    EXPECT_EQ(expected_begin, n);
    if (n > 0)
        EXPECT_LE(max_size - min_size, 1u);
    EXPECT_LE(ranges.size(), parts);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SplitRangeProperty,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{10, 3},
                      std::pair<size_t, size_t>{100, 7},
                      std::pair<size_t, size_t>{7, 100},
                      std::pair<size_t, size_t>{1024, 16}));

TEST(ThreadPool, InlineModeRunsOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    std::thread::id id;
    pool.submit([&] { id = std::this_thread::get_id(); });
    EXPECT_EQ(id, std::this_thread::get_id());
    pool.waitIdle(); // no-op, must not hang
}

TEST(ThreadPool, ExecutesAllSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.waitIdle();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, ComputesCorrectSum)
{
    ThreadPool pool(4);
    std::vector<int> data(10000);
    std::iota(data.begin(), data.end(), 0);
    std::atomic<long long> total{0};
    parallelFor(pool, data.size(), [&](Range r) {
        long long local = 0;
        for (size_t i = r.begin; i < r.end; ++i)
            local += data[i];
        total.fetch_add(local);
    });
    EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

TEST(ParallelFor, InlineModeCoversRange)
{
    ThreadPool pool(0);
    std::vector<bool> seen(100, false);
    parallelFor(pool, seen.size(), [&](Range r) {
        for (size_t i = r.begin; i < r.end; ++i)
            seen[i] = true;
    });
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(ParallelFor, EmptyRangeRunsNothing)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallelFor(pool, 0, [&](Range) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForParts, ProducesRequestedPartition)
{
    ThreadPool pool(2);
    std::vector<int> part_of(100, -1);
    parallelForParts(pool, 100, 7, [&](size_t part, Range r) {
        for (size_t i = r.begin; i < r.end; ++i)
            part_of[i] = static_cast<int>(part);
    });
    // Every element assigned, parts contiguous and ascending.
    for (int p : part_of)
        EXPECT_GE(p, 0);
    EXPECT_TRUE(std::is_sorted(part_of.begin(), part_of.end()));
    EXPECT_EQ(part_of.back(), 6);
}

TEST(ParallelForParts, MorePartsThanItems)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallelForParts(pool, 3, 10, [&](size_t, Range r) {
        EXPECT_EQ(r.size(), 1u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelFor, TemporaryBodyOutlivesCaller)
{
    // The loops copy the body into the tasks; a lambda passed as a
    // temporary (with captured state by value) must stay valid while
    // workers run.
    ThreadPool pool(3);
    std::atomic<long long> total{0};
    {
        const std::vector<int> weights(1000, 2);
        parallelFor(pool, weights.size(), [&total, weights](Range r) {
            long long local = 0;
            for (size_t i = r.begin; i < r.end; ++i)
                local += weights[i];
            total.fetch_add(local);
        });
    }
    EXPECT_EQ(total.load(), 2000);
}

TEST(ParallelForDynamic, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h.store(0);
    parallelForDynamic(pool, hits.size(), 7, [&](size_t, Range r) {
        for (size_t i = r.begin; i < r.end; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelForDynamic, InlineModeCoversRange)
{
    ThreadPool pool(0);
    std::vector<bool> seen(100, false);
    size_t max_worker = 0;
    parallelForDynamic(pool, seen.size(), 3, [&](size_t w, Range r) {
        max_worker = std::max(max_worker, w);
        for (size_t i = r.begin; i < r.end; ++i)
            seen[i] = true;
    });
    EXPECT_EQ(max_worker, 0u); // single inline worker
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(ParallelForDynamic, EmptyRangeRunsNothing)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallelForDynamic(pool, 0, 4, [&](size_t, Range) {
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForDynamic, ZeroGrainBehavesAsOne)
{
    ThreadPool pool(2);
    std::atomic<int> items{0};
    parallelForDynamic(pool, 25, 0, [&](size_t, Range r) {
        EXPECT_EQ(r.size(), 1u);
        items.fetch_add(static_cast<int>(r.size()));
    });
    EXPECT_EQ(items.load(), 25);
}

TEST(ParallelForDynamic, WorkerIdsAreUniqueAndDense)
{
    ThreadPool pool(4);
    std::mutex mu;
    std::vector<size_t> seen_workers;
    parallelForDynamic(pool, 200, 1, [&](size_t w, Range) {
        std::lock_guard<std::mutex> lock(mu);
        seen_workers.push_back(w);
    });
    for (size_t w : seen_workers)
        EXPECT_LT(w, 4u);
}

TEST(ParallelForDynamic, RangesRespectGrainAndOrder)
{
    ThreadPool pool(3);
    std::mutex mu;
    std::vector<Range> claimed;
    parallelForDynamic(pool, 100, 8, [&](size_t, Range r) {
        std::lock_guard<std::mutex> lock(mu);
        claimed.push_back(r);
    });
    size_t total = 0;
    for (const Range &r : claimed) {
        EXPECT_TRUE(r.size() == 8 || r.end == 100);
        total += r.size();
    }
    EXPECT_EQ(total, 100u);
}

TEST(ParallelForDynamic, BalancesSleepBoundWork)
{
    // Load-balance property: with blocking (sleeping) bodies even a
    // single-core host rotates workers, so every worker should claim
    // a comparable share off the cursor. Compute-bound bodies would
    // make this test meaningless on one core (the first running
    // worker can drain the cursor within its scheduling quantum).
    constexpr size_t kWorkers = 4;
    constexpr size_t kItems = 200;
    for (int attempt = 0; attempt < 4; ++attempt) {
        ThreadPool pool(kWorkers);
        std::vector<std::atomic<size_t>> per_worker(kWorkers);
        for (auto &c : per_worker)
            c.store(0);
        parallelForDynamic(pool, kItems, 1, [&](size_t w, Range r) {
            per_worker[w].fetch_add(r.size());
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        });
        size_t min_c = kItems, max_c = 0, total = 0;
        for (const auto &c : per_worker) {
            min_c = std::min(min_c, c.load());
            max_c = std::max(max_c, c.load());
            total += c.load();
        }
        ASSERT_EQ(total, kItems);
        if (min_c > 0 && max_c <= min_c + (min_c + 3) / 4)
            return; // within 25%: balanced
    }
    FAIL() << "dynamic scheduling never balanced sleep-bound work";
}

TEST(ThreadPool, SubmitFromWorkerDoesNotDeadlock)
{
    // The idle-waiter-gated notify must still wake someone when tasks
    // are enqueued from inside a worker (nested submits).
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 20);
}

TEST(ScratchArena, SpansAreCacheLineAligned)
{
    ScratchArena arena;
    for (size_t n : {1ul, 3ul, 17ul, 1000ul}) {
        auto f = reinterpret_cast<uintptr_t>(arena.floats(n));
        auto d = reinterpret_cast<uintptr_t>(arena.doubles(n));
        EXPECT_EQ(f % kCacheLineBytes, 0u) << "n=" << n;
        EXPECT_EQ(d % kCacheLineBytes, 0u) << "n=" << n;
    }
}

TEST(ScratchArena, SpansPersistUntilReset)
{
    // Growth mid-cycle must never move live spans: earlier claims
    // stay readable (and disjoint from later ones) until reset().
    ScratchArena arena;
    std::vector<float *> spans;
    for (int i = 0; i < 50; ++i) {
        float *s = arena.floats(100);
        s[0] = float(i);
        s[99] = float(-i);
        spans.push_back(s);
    }
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(spans[i][0], float(i));
        EXPECT_EQ(spans[i][99], float(-i));
    }
}

TEST(ScratchArena, CapacityIsStableAtSteadyState)
{
    // A serving loop claiming the same shapes every cycle must stop
    // allocating: capacity settles after the first cycle and reset()
    // recycles it.
    ScratchArena arena;
    auto cycle = [&] {
        arena.reset();
        arena.floats(4096);
        arena.doubles(64);
        arena.floats(64);
    };
    cycle();
    const size_t cap = arena.capacityBytes();
    EXPECT_GE(cap, 4096 * sizeof(float) + 64 * sizeof(double)
                       + 64 * sizeof(float));
    for (int i = 0; i < 10; ++i)
        cycle();
    EXPECT_EQ(arena.capacityBytes(), cap);
    EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(ScratchArena, ResetCoalescesGrowthIntoOneBlock)
{
    // Overflowing a cycle appends blocks; the next reset() merges the
    // retained capacity so the following cycle of equal total size is
    // a single bump-pointer walk.
    ScratchArena arena;
    arena.floats(100);
    arena.floats(10000);
    arena.floats(100000);
    EXPECT_GT(arena.blockCount(), 1u);
    const size_t cap = arena.capacityBytes();
    arena.reset();
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_EQ(arena.capacityBytes(), cap);
    // The whole prior footprint now fits in the single block.
    float *s = arena.floats(cap / sizeof(float));
    s[cap / sizeof(float) - 1] = 1.f;
    EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(ScratchArena, ZeroSizedClaimIsHarmless)
{
    ScratchArena arena;
    arena.floats(0);
    EXPECT_EQ(arena.capacityBytes(), 0u);
    float *s = arena.floats(8);
    s[7] = 3.f;
    EXPECT_EQ(s[7], 3.f);
}

TEST(ScratchArena, MoveTransfersOwnership)
{
    ScratchArena a;
    float *s = a.floats(256);
    s[0] = 42.f;
    const size_t cap = a.capacityBytes();

    ScratchArena b(std::move(a));
    EXPECT_EQ(b.capacityBytes(), cap);
    EXPECT_EQ(s[0], 42.f); // span owned by b now, still alive

    ScratchArena c;
    c.floats(64); // existing capacity must be released, not leaked
    c = std::move(b);
    EXPECT_EQ(c.capacityBytes(), cap);
    EXPECT_EQ(s[0], 42.f);
}

// ---------------------------------------------------------------------
// Kernel autotuner. The table is process-wide, so these tests clear it
// up front; later engine constructions simply re-measure their buckets.
// ---------------------------------------------------------------------

TEST(KernelTuner, PlanIsMeasuredOncePerBucketAndCached)
{
    KernelTuner &tuner = KernelTuner::instance();
    tuner.clear();
    const size_t c0 = tuner.measuredCount();

    const KernelPlan p1 = tuner.plan("i8", 128, 4);
    EXPECT_EQ(tuner.measuredCount(), c0 + 1);
    // Every candidate strip is a multiple of the kernels' 4-row
    // register group — the bit-identity precondition.
    EXPECT_GT(p1.stripRows, 0u);
    EXPECT_EQ(p1.stripRows % 4, 0u);

    // Same bucket (ed <= 128 -> 128, nq in 2..8 -> 4): cache hit, no
    // re-measurement, identical pick.
    const KernelPlan p2 = tuner.plan("i8", 100, 3);
    EXPECT_EQ(tuner.measuredCount(), c0 + 1);
    EXPECT_EQ(p2.stripRows, p1.stripRows);
    EXPECT_EQ(p2.prefetchStride, p1.prefetchStride);

    // Different bucket: measured separately.
    tuner.plan("i8", 128, 1);
    EXPECT_EQ(tuner.measuredCount(), c0 + 2);
}

TEST(KernelTuner, ExportImportRoundTripSkipsMeasurement)
{
    KernelTuner &tuner = KernelTuner::instance();
    tuner.clear();
    tuner.plan("bf16", 64, 1);
    tuner.plan("f32", 256, 16);
    const auto before = tuner.entries();
    ASSERT_EQ(before.size(), 2u);
    const std::string json = tuner.exportJson();
    // Schema fields documented in DESIGN.md §10.
    for (const char *field :
         {"\"backend\"", "\"entries\"", "\"precision\"", "\"ed\"",
          "\"nq\"", "\"strip_rows\"", "\"prefetch_stride\"",
          "\"seconds\"", "\"origin\"", "\"measured\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;

    tuner.clear();
    ASSERT_EQ(tuner.importJson(json), 2);
    const size_t measured = tuner.measuredCount();
    for (const auto &e : before) {
        // Imported entries satisfy plan() without re-measuring and
        // reproduce the exported picks exactly.
        const KernelPlan p = tuner.plan(e.precision.c_str(), e.ed, e.nq);
        EXPECT_EQ(p.stripRows, e.plan.stripRows) << e.precision;
        EXPECT_EQ(p.prefetchStride, e.plan.prefetchStride)
            << e.precision;
    }
    EXPECT_EQ(tuner.measuredCount(), measured);
    for (const auto &e : tuner.entries())
        EXPECT_EQ(e.origin, PlanOrigin::Imported)
            << e.precision << "/" << e.ed << "/" << e.nq;
}

TEST(KernelTuner, ImportNeverOverridesLocalMeasurements)
{
    KernelTuner &tuner = KernelTuner::instance();
    tuner.clear();
    const KernelPlan local = tuner.plan("f32", 64, 4);
    // An import claiming a different pick for the same bucket (and a
    // new bucket) merges only the new one.
    const std::string json =
        "{\"backend\": \"test\", \"entries\": ["
        "{\"precision\": \"f32\", \"ed\": 64, \"nq\": 4, "
        "\"strip_rows\": 60, \"prefetch_stride\": 9, "
        "\"seconds\": 1.0, \"origin\": \"measured\"},"
        "{\"precision\": \"f32\", \"ed\": 512, \"nq\": 16, "
        "\"strip_rows\": 8, \"prefetch_stride\": 0, "
        "\"seconds\": 2.0, \"origin\": \"measured\"}]}";
    EXPECT_EQ(tuner.importJson(json), 1);
    const KernelPlan after = tuner.plan("f32", 64, 4);
    EXPECT_EQ(after.stripRows, local.stripRows);
    EXPECT_EQ(after.prefetchStride, local.prefetchStride);
    const KernelPlan imported = tuner.plan("f32", 512, 16);
    EXPECT_EQ(imported.stripRows, 8u);
    EXPECT_EQ(imported.prefetchStride, 0u);
    EXPECT_EQ(tuner.importJson("not json at all"), -1);
}

TEST(KernelTuner, ImportRejectsPlansOutsideTheCandidateGrids)
{
    KernelTuner &tuner = KernelTuner::instance();
    tuner.clear();
    // Three corrupt entries: strip_rows 0 (would wedge the engines'
    // `s0 += strip` sweep loops), an off-grid strip, and an off-grid
    // prefetch stride. None may be imported — a tuned plan's whole
    // contract is membership in the measured candidate grids.
    const std::string json =
        "{\"backend\": \"test\", \"entries\": ["
        "{\"precision\": \"f32\", \"ed\": 64, \"nq\": 4, "
        "\"strip_rows\": 0, \"prefetch_stride\": 0, "
        "\"seconds\": 1.0, \"origin\": \"measured\"},"
        "{\"precision\": \"f32\", \"ed\": 128, \"nq\": 4, "
        "\"strip_rows\": 60, \"prefetch_stride\": 0, "
        "\"seconds\": 1.0, \"origin\": \"measured\"},"
        "{\"precision\": \"f32\", \"ed\": 256, \"nq\": 4, "
        "\"strip_rows\": 8, \"prefetch_stride\": 9, "
        "\"seconds\": 1.0, \"origin\": \"measured\"}]}";
    EXPECT_EQ(tuner.importJson(json), 0);
    EXPECT_TRUE(tuner.entries().empty());

    // The bucket a corrupt entry claimed simply measures and lands on
    // an in-grid plan.
    const size_t c0 = tuner.measuredCount();
    const KernelPlan p = tuner.plan("f32", 64, 4);
    EXPECT_EQ(tuner.measuredCount(), c0 + 1);
    bool strip_in_grid = false;
    for (size_t s : kStripRowsCandidates)
        strip_in_grid |= p.stripRows == s;
    EXPECT_TRUE(strip_in_grid);
    bool pf_in_grid = false;
    for (size_t s : kPrefetchStrideCandidates)
        pf_in_grid |= p.prefetchStride == s;
    EXPECT_TRUE(pf_in_grid);
}

TEST(KernelTuner, CorruptedEnvCacheFallsBackToMeasuring)
{
    KernelTuner &tuner = KernelTuner::instance();
    const char *path = "tuner_cache_corrupt_test.json";

    auto planWithCache = [&](const std::string &content) {
        {
            std::ofstream out(path);
            out << content;
        }
        ::setenv("MNNFAST_TUNER_CACHE", path, 1);
        tuner.clear(); // re-arms the one-shot env seeding
        const size_t c0 = tuner.measuredCount();
        const KernelPlan p = tuner.plan("bf16", 64, 4);
        ::unsetenv("MNNFAST_TUNER_CACHE");
        // Whatever the file held, the plan was measured locally (the
        // seeding imported nothing) and is in-grid.
        EXPECT_EQ(tuner.measuredCount(), c0 + 1) << content;
        bool in_grid = false;
        for (size_t s : kStripRowsCandidates)
            in_grid |= p.stripRows == s;
        EXPECT_TRUE(in_grid) << content;
        for (const auto &e : tuner.entries())
            EXPECT_EQ(e.origin, PlanOrigin::Measured) << content;
    };

    // Not JSON at all.
    planWithCache("complete garbage %%%");
    // Truncated mid-entry (no closing brace: the scanner must stop).
    planWithCache("{\"backend\": \"x\", \"entries\": ["
                  "{\"precision\": \"bf16\", \"ed\": 64, \"nq\": 4, "
                  "\"strip_rows\": 8,");
    // Well-formed JSON whose plan is poison (strip_rows 0).
    planWithCache("{\"backend\": \"x\", \"entries\": ["
                  "{\"precision\": \"bf16\", \"ed\": 64, \"nq\": 4, "
                  "\"strip_rows\": 0, \"prefetch_stride\": 0, "
                  "\"seconds\": 1.0, \"origin\": \"measured\"}]}");
    // Entry missing required fields.
    planWithCache("{\"backend\": \"x\", \"entries\": ["
                  "{\"precision\": \"bf16\", \"ed\": 64}]}");

    std::remove(path);
    tuner.clear();
}

TEST(KernelTuner, NoTunerEnvReturnsDefaultsWithoutCaching)
{
    KernelTuner &tuner = KernelTuner::instance();
    tuner.clear();
    ::setenv("MNNFAST_NO_TUNER", "1", 1);
    const KernelPlan p = tuner.plan("i8", 128, 16);
    ::unsetenv("MNNFAST_NO_TUNER");
    EXPECT_EQ(p.stripRows, KernelPlan{}.stripRows);
    EXPECT_EQ(p.prefetchStride, KernelPlan{}.prefetchStride);
    EXPECT_EQ(tuner.measuredCount(), 0u);
    EXPECT_TRUE(tuner.entries().empty());
}

} // namespace
} // namespace mnnfast::runtime
